package cas

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// chunkSuffix names chunk files: <dir>/<hex sha256>.chunk. The name is
// the content address, so a file whose bytes do not hash to its name is
// corrupt by definition — that is what Scrub verifies.
const chunkSuffix = ".chunk"

const tmpSuffix = ".tmp"

// entry tracks one chunk's lifetime. data is the in-memory copy, kept
// until the chunk is made durable (then dropped — disk is the source of
// truth); refs counts live registry manifests; onDisk mirrors the chunk
// file's existence.
type entry struct {
	data   []byte
	size   int
	refs   int
	onDisk bool
}

// Stats summarizes a chunk store.
type Stats struct {
	// MemChunks/MemBytes count chunks whose data is held in memory
	// (referenced but not yet flushed by a snapshot).
	MemChunks int
	MemBytes  int64
	// DiskChunks/DiskBytes count durable chunk files.
	DiskChunks int
	DiskBytes  int64
	// Pinned counts distinct chunks pinned by published snapshots.
	Pinned int
}

// ScrubReport is the result of a Store.Scrub pass.
type ScrubReport struct {
	// DiskChunks/DiskBytes is the full on-disk inventory.
	DiskChunks int
	DiskBytes  int64
	// Live counts disk chunks that are referenced or pinned.
	Live int
	// Orphans counts disk chunks with no reference and no pin — debris
	// from a torn sweep or crashed publish; harmless, reclaimable.
	Orphans     int
	OrphanBytes int64
	// Removed counts orphans deleted (only when scrubbing with remove).
	Removed      int
	RemovedBytes int64
	// Corrupt lists disk chunks whose bytes do not hash to their name.
	Corrupt []Hash
	// Missing lists pinned or referenced chunks with neither a disk file
	// nor an in-memory copy — data loss, the one state scrub cannot fix.
	Missing []Hash
}

// Clean reports whether the scrub found no corruption or loss.
func (r ScrubReport) Clean() bool { return len(r.Corrupt) == 0 && len(r.Missing) == 0 }

// Store is a refcounted, disk-backed chunk store shared by every shard of
// one population store. All methods are safe for concurrent use.
type Store struct {
	dir    string
	noSync bool

	mu     sync.Mutex
	chunks map[Hash]*entry
	// pins: owner (shard directory) -> chunks its published snapshot
	// references. Replaced wholesale when the owner publishes a snapshot.
	pins map[string]map[Hash]struct{}
	// protect: in-flight publish token -> chunks written but not yet
	// covered by a pin. Keeps a concurrent sweep from deleting chunks
	// between their flush and the snapshot rename that pins them.
	protect map[string]map[Hash]struct{}
}

// Open creates or reopens the chunk directory and inventories the chunks
// already on disk. noSync skips per-file fsyncs (test/bulk-load speed;
// matches the store's Options.NoSync).
func Open(dir string, noSync bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: create chunk directory: %w", err)
	}
	s := &Store{
		dir:     dir,
		noSync:  noSync,
		chunks:  make(map[Hash]*entry),
		pins:    make(map[string]map[Hash]struct{}),
		protect: make(map[string]map[Hash]struct{}),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cas: list chunk directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name)) // torn write; content unknown
			continue
		}
		h, ok := parseChunkName(name)
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.chunks[h] = &entry{size: int(info.Size()), onDisk: true}
	}
	return s, nil
}

func parseChunkName(name string) (Hash, bool) {
	if !strings.HasSuffix(name, chunkSuffix) {
		return Hash{}, false
	}
	h, err := ParseHex(strings.TrimSuffix(name, chunkSuffix))
	if err != nil {
		return Hash{}, false
	}
	return h, true
}

func (s *Store) chunkPath(h Hash) string {
	return filepath.Join(s.dir, h.Hex()+chunkSuffix)
}

// Put interns a blob: chunks it, adds one reference per chunk occurrence,
// and keeps the data in memory until a snapshot flushes it. It never
// touches disk, so it is safe on the WAL-apply path.
func (s *Store) Put(blob []byte) Manifest {
	m, parts := ManifestOf(blob)
	s.mu.Lock()
	for i, c := range m.Chunks {
		e := s.chunks[c.Hash]
		if e == nil {
			e = &entry{size: c.Size}
			s.chunks[c.Hash] = e
		}
		if e.data == nil && !e.onDisk {
			e.data = append([]byte(nil), parts[i]...)
		}
		e.refs++
	}
	s.mu.Unlock()
	return m
}

// Retain adds one reference per chunk of an existing manifest. It fails
// if any chunk is unknown — a registry entry pointing at data the store
// does not hold is corruption, caught here at load time rather than at
// first read.
func (s *Store) Retain(m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range m.Chunks {
		if s.chunks[c.Hash] == nil {
			return fmt.Errorf("cas: retain: missing chunk %s", c.Hash.Hex())
		}
	}
	for _, c := range m.Chunks {
		s.chunks[c.Hash].refs++
	}
	return nil
}

// Release drops one reference per chunk of a manifest (the keep-last-K
// trim path). Memory-only chunks that reach zero references are freed
// immediately; durable chunks stay until Sweep decides they are neither
// referenced nor pinned.
func (s *Store) Release(m Manifest) {
	s.mu.Lock()
	for _, c := range m.Chunks {
		e := s.chunks[c.Hash]
		if e == nil {
			continue
		}
		if e.refs > 0 {
			e.refs--
		}
		if e.refs == 0 && !e.onDisk && !s.heldLocked(c.Hash) {
			delete(s.chunks, c.Hash)
		}
	}
	s.mu.Unlock()
}

// heldLocked reports whether any pin or publish protection covers h.
func (s *Store) heldLocked(h Hash) bool {
	for _, set := range s.pins {
		if _, ok := set[h]; ok {
			return true
		}
	}
	for _, set := range s.protect {
		if _, ok := set[h]; ok {
			return true
		}
	}
	return false
}

// Get reassembles a blob from its manifest (memory first, disk
// read-through after a flush) and verifies the whole-blob hash.
func (s *Store) Get(m Manifest) ([]byte, error) {
	out := make([]byte, 0, m.Size)
	for _, c := range m.Chunks {
		data, err := s.ChunkData(c.Hash)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	if int64(len(out)) != m.Size {
		return nil, fmt.Errorf("cas: blob %s reassembled to %d bytes, want %d", m.Sum.Hex(), len(out), m.Size)
	}
	if HashOf(out) != m.Sum {
		return nil, fmt.Errorf("cas: blob %s failed content verification", m.Sum.Hex())
	}
	return out, nil
}

// ChunkData returns one chunk's bytes, from memory or disk. Disk reads
// are verified against the content address.
func (s *Store) ChunkData(h Hash) ([]byte, error) {
	s.mu.Lock()
	e := s.chunks[h]
	var data []byte
	if e != nil && e.data != nil {
		data = e.data
	}
	onDisk := e != nil && e.onDisk
	s.mu.Unlock()
	if data != nil {
		return data, nil
	}
	if !onDisk {
		return nil, fmt.Errorf("cas: missing chunk %s", h.Hex())
	}
	data, err := os.ReadFile(s.chunkPath(h))
	if err != nil {
		return nil, fmt.Errorf("cas: read chunk %s: %w", h.Hex(), err)
	}
	if HashOf(data) != h {
		return nil, fmt.Errorf("cas: chunk %s failed content verification", h.Hex())
	}
	return data, nil
}

// Contains reports whether the store holds a chunk (in memory or on
// disk).
func (s *Store) Contains(h Hash) bool {
	s.mu.Lock()
	_, ok := s.chunks[h]
	s.mu.Unlock()
	return ok
}

// Hashes lists every chunk the store holds — what a replication follower
// declares so the leader ships only what is missing.
func (s *Store) Hashes() []Hash {
	s.mu.Lock()
	out := make([]Hash, 0, len(s.chunks))
	for h := range s.chunks {
		out = append(out, h)
	}
	s.mu.Unlock()
	return out
}

// WriteBlob chunks a blob and makes every chunk durable, skipping chunks
// already on disk — the incremental-compaction core: a snapshot of
// mostly-unchanged state writes only the changed chunks. Written and
// reused chunks alike are protected under token until Unprotect.
func (s *Store) WriteBlob(token string, blob []byte) (Manifest, error) {
	m, parts := ManifestOf(blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, c := range m.Chunks {
		if err := s.flushLocked(c.Hash, parts[i]); err != nil {
			return Manifest{}, err
		}
		s.protectLocked(token, c.Hash)
	}
	return m, nil
}

// EnsureDurable makes every chunk of an existing manifest durable (flushes
// in-memory data to disk) and protects it under token.
func (s *Store) EnsureDurable(token string, m Manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range m.Chunks {
		if err := s.flushLocked(c.Hash, nil); err != nil {
			return err
		}
		s.protectLocked(token, c.Hash)
	}
	return nil
}

// PutChunk verifies data against its declared hash, makes it durable, and
// protects it under token — the replication delta receive path.
func (s *Store) PutChunk(token string, h Hash, data []byte) error {
	if HashOf(data) != h {
		return fmt.Errorf("cas: chunk %s failed content verification on receive", h.Hex())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(h, data); err != nil {
		return err
	}
	s.protectLocked(token, h)
	return nil
}

// flushLocked writes one chunk file if it is not already durable, using
// data (when given) or the entry's in-memory copy. Once durable, the
// in-memory copy is dropped — reads fall through to disk.
func (s *Store) flushLocked(h Hash, data []byte) error {
	e := s.chunks[h]
	if e != nil && e.onDisk {
		e.data = nil
		return nil
	}
	if data == nil {
		if e == nil || e.data == nil {
			return fmt.Errorf("cas: flush: missing chunk %s", h.Hex())
		}
		data = e.data
	}
	path := s.chunkPath(h)
	tmp := path + tmpSuffix
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("cas: write chunk %s: %w", h.Hex(), err)
	}
	if !s.noSync {
		if f, err := os.Open(tmp); err == nil {
			_ = f.Sync()
			_ = f.Close()
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("cas: publish chunk %s: %w", h.Hex(), err)
	}
	if e == nil {
		e = &entry{size: len(data)}
		s.chunks[h] = e
	}
	e.onDisk = true
	e.data = nil
	return nil
}

func (s *Store) protectLocked(token string, h Hash) {
	set := s.protect[token]
	if set == nil {
		set = make(map[Hash]struct{})
		s.protect[token] = set
	}
	set[h] = struct{}{}
}

// Unprotect drops a publish token's protection (after the covering
// snapshot has been pinned, or after a failed publish — the chunks then
// become sweepable orphans, never dangling references).
func (s *Store) Unprotect(token string) {
	s.mu.Lock()
	delete(s.protect, token)
	s.mu.Unlock()
}

// SetPins replaces one owner's pin set with the chunks its newly
// published snapshot references. Called after the snapshot rename, so the
// pins always describe durable state.
func (s *Store) SetPins(owner string, hashes []Hash) {
	set := make(map[Hash]struct{}, len(hashes))
	for _, h := range hashes {
		set[h] = struct{}{}
	}
	s.mu.Lock()
	s.pins[owner] = set
	s.mu.Unlock()
}

// Sweep deletes durable chunks that no registry entry references and no
// snapshot pins — the garbage half of keep-last-K retention. Crash-safe
// by construction: a chunk is only ever deleted when nothing durable
// points at it, so a sweep torn at any point strands orphan files (found
// and removed by the next sweep or a scrub) but can never lose data.
func (s *Store) Sweep() (removed int, freed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for h, e := range s.chunks {
		if !e.onDisk || e.refs > 0 || s.heldLocked(h) {
			continue
		}
		if err := os.Remove(s.chunkPath(h)); err != nil && !os.IsNotExist(err) {
			continue // try again next sweep
		}
		removed++
		freed += int64(e.size)
		delete(s.chunks, h)
	}
	return removed, freed
}

// Scrub audits the chunk directory: every chunk file is re-hashed and
// checked against its name, orphans are counted (and removed when remove
// is set), and pinned-or-referenced chunks that are missing entirely are
// reported as data loss.
func (s *Store) Scrub(remove bool) (ScrubReport, error) {
	var rep ScrubReport
	s.mu.Lock()
	type item struct {
		h Hash
		e entry
	}
	items := make([]item, 0, len(s.chunks))
	for h, e := range s.chunks {
		items = append(items, item{h: h, e: *e})
	}
	held := make(map[Hash]struct{})
	for _, set := range s.pins {
		for h := range set {
			held[h] = struct{}{}
		}
	}
	for _, set := range s.protect {
		for h := range set {
			held[h] = struct{}{}
		}
	}
	s.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].h.Hex() < items[j].h.Hex() })

	for _, it := range items {
		_, pinned := held[it.h]
		live := it.e.refs > 0 || pinned
		if it.e.onDisk {
			rep.DiskChunks++
			rep.DiskBytes += int64(it.e.size)
			data, err := os.ReadFile(s.chunkPath(it.h))
			switch {
			case err != nil:
				if live {
					rep.Missing = append(rep.Missing, it.h)
				}
			case HashOf(data) != it.h:
				rep.Corrupt = append(rep.Corrupt, it.h)
			}
			if live {
				rep.Live++
				continue
			}
			rep.Orphans++
			rep.OrphanBytes += int64(it.e.size)
			if remove {
				n, freed := s.sweepOne(it.h)
				rep.Removed += n
				rep.RemovedBytes += freed
			}
			continue
		}
		// Memory-only chunk: fine while its data is held; loss otherwise.
		if live && it.e.data == nil {
			rep.Missing = append(rep.Missing, it.h)
		}
	}
	return rep, nil
}

// sweepOne removes a single chunk iff it is still sweepable (the state
// may have changed since Scrub sampled it).
func (s *Store) sweepOne(h Hash) (int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.chunks[h]
	if e == nil || !e.onDisk || e.refs > 0 || s.heldLocked(h) {
		return 0, 0
	}
	if err := os.Remove(s.chunkPath(h)); err != nil && !os.IsNotExist(err) {
		return 0, 0
	}
	delete(s.chunks, h)
	return 1, int64(e.size)
}

// Stats summarizes the store's memory and disk footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st Stats
	for _, e := range s.chunks {
		if e.data != nil {
			st.MemChunks++
			st.MemBytes += int64(len(e.data))
		}
		if e.onDisk {
			st.DiskChunks++
			st.DiskBytes += int64(e.size)
		}
	}
	pinned := make(map[Hash]struct{})
	for _, set := range s.pins {
		for h := range set {
			pinned[h] = struct{}{}
		}
	}
	st.Pinned = len(pinned)
	return st
}
