package cas

import (
	"encoding/binary"

	"smarteryou/internal/binio"
)

// Manifest wire/disk encoding, shared by the store's snapshot.cas format
// and the replication delta frames:
//
//	uvarint blob size
//	32B     whole-blob SHA-256
//	uvarint chunk count
//	per chunk: 32B hash + uvarint size
//
// The encoding is deterministic (chunk order is the blob's byte order),
// so identical blobs produce identical manifest bytes — snapshots of
// unchanged state dedup down to their framing.

// AppendManifest appends the binary encoding of m.
func AppendManifest(buf []byte, m Manifest) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Size))
	buf = append(buf, m.Sum[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Chunks)))
	for _, c := range m.Chunks {
		buf = append(buf, c.Hash[:]...)
		buf = binary.AppendUvarint(buf, uint64(c.Size))
	}
	return buf
}

// EncodedManifestLen returns an upper bound on AppendManifest's output
// size, for preallocation.
func EncodedManifestLen(m Manifest) int {
	return 2*binary.MaxVarintLen64 + HashSize + len(m.Chunks)*(HashSize+binary.MaxVarintLen64)
}

// ReadManifest decodes one manifest at the reader's cursor. Errors latch
// on the reader; the count is bounded by the remaining bytes so a corrupt
// prefix cannot drive a huge allocation.
func ReadManifest(r *binio.Reader) Manifest {
	var m Manifest
	m.Size = int64(r.Uvarint())
	m.Sum = ReadHash(r)
	n := r.Uvarint()
	if r.Err() != nil {
		return Manifest{}
	}
	if n > uint64(r.Remaining()/(HashSize+1))+1 {
		r.Fail("cas: chunk count %d exceeds %d remaining bytes", n, r.Remaining())
		return Manifest{}
	}
	m.Chunks = make([]Chunk, 0, n)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		c := Chunk{Hash: ReadHash(r)}
		c.Size = int(r.Uvarint())
		m.Chunks = append(m.Chunks, c)
	}
	if r.Err() != nil {
		return Manifest{}
	}
	return m
}

// ReadHash decodes one raw 32-byte hash at the reader's cursor.
func ReadHash(r *binio.Reader) Hash {
	var h Hash
	for i := range h {
		h[i] = r.Byte()
	}
	return h
}
