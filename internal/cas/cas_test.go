package cas

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smarteryou/internal/binio"
)

// randomBlob builds deterministic pseudo-random content of n bytes.
func randomBlob(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestSplitReassembles(t *testing.T) {
	for _, n := range []int{0, 1, 100, MinChunkSize, MinChunkSize + 1, 200_000} {
		blob := randomBlob(int64(n), n)
		parts := Split(blob)
		var got []byte
		for _, p := range parts {
			got = append(got, p...)
			if len(p) > MaxChunkSize {
				t.Fatalf("n=%d: chunk of %d bytes exceeds max %d", n, len(p), MaxChunkSize)
			}
		}
		if !bytes.Equal(got, blob) {
			t.Fatalf("n=%d: reassembled blob differs", n)
		}
		if n == 0 && len(parts) != 0 {
			t.Fatalf("empty blob yielded %d chunks", len(parts))
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	blob := randomBlob(7, 300_000)
	a, _ := ManifestOf(blob)
	b, _ := ManifestOf(blob)
	if a.Sum != b.Sum || len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("manifests differ for identical blob")
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

// TestSplitShiftResilience is the property fixed-width chunking lacks:
// editing bytes near the front must leave most chunks shared.
func TestSplitShiftResilience(t *testing.T) {
	blob := randomBlob(11, 400_000)
	edited := append([]byte("prefix-insertion!"), blob...)
	a, _ := ManifestOf(blob)
	b, _ := ManifestOf(edited)
	have := make(map[Hash]struct{}, len(a.Chunks))
	for _, c := range a.Chunks {
		have[c.Hash] = struct{}{}
	}
	shared := 0
	for _, c := range b.Chunks {
		if _, ok := have[c.Hash]; ok {
			shared++
		}
	}
	if shared < len(b.Chunks)*3/4 {
		t.Fatalf("only %d/%d chunks survive a front insertion", shared, len(b.Chunks))
	}
}

func TestManifestCodecRoundTrip(t *testing.T) {
	m, _ := ManifestOf(randomBlob(3, 150_000))
	buf := AppendManifest(nil, m)
	r := binio.NewReader(buf)
	got := ReadManifest(r)
	if err := r.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d trailing bytes", r.Remaining())
	}
	if got.Size != m.Size || got.Sum != m.Sum || len(got.Chunks) != len(m.Chunks) {
		t.Fatalf("manifest mismatch: %+v vs %+v", got, m)
	}
}

func TestPutGetReleaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	blob := randomBlob(1, 100_000)
	m := s.Put(blob)
	got, err := s.Get(m)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("round trip mismatch")
	}
	// Memory-only, unreferenced chunks vanish on release.
	s.Release(m)
	if _, err := s.Get(m); err == nil {
		t.Fatal("expected get to fail after final release")
	}
}

func TestWriteBlobDedupsOnDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	blob := randomBlob(2, 200_000)
	m1, err := s.WriteBlob("t", blob)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Stats().DiskBytes
	// A lightly edited blob shares most chunks; rewriting must add only
	// the changed ones.
	edited := append([]byte(nil), blob...)
	copy(edited[50_000:], []byte("mutation"))
	if _, err := s.WriteBlob("t", edited); err != nil {
		t.Fatal(err)
	}
	second := s.Stats().DiskBytes
	if added := second - first; added > first/2 {
		t.Fatalf("edited blob added %d of %d bytes — dedup not working", added, first)
	}
	// Read-through after flush.
	got, err := s.Get(m1)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("disk read-through failed: %v", err)
	}
	// Reopen inventories the chunks.
	s2, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s2.Get(m1)
	if err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("reopened read failed: %v", err)
	}
}

func TestSweepHonorsRefsPinsProtection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	mRef, err := s.WriteBlob("pub", randomBlob(4, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retain(mRef); err != nil {
		t.Fatal(err)
	}
	mPin, err := s.WriteBlob("pub", randomBlob(5, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	s.SetPins("owner", mPin.Hashes())
	mProt, err := s.WriteBlob("pub2", randomBlob(6, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	mOrphan, err := s.WriteBlob("pub", randomBlob(7, 50_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Unprotect("pub") // mRef survives via refs, mPin via pin, mOrphan is garbage

	removed, _ := s.Sweep()
	if removed == 0 {
		t.Fatal("sweep removed nothing")
	}
	for _, m := range []Manifest{mRef, mPin, mProt} {
		if _, err := s.Get(m); err != nil {
			t.Fatalf("sweep deleted live data: %v", err)
		}
	}
	if _, err := s.Get(mOrphan); err == nil {
		t.Fatal("sweep kept an orphan")
	}
	// Dropping the protection makes mProt sweepable.
	s.Unprotect("pub2")
	s.Sweep()
	if _, err := s.Get(mProt); err == nil {
		t.Fatal("sweep kept an unprotected orphan")
	}
}

func TestPutChunkVerifies(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	data := randomBlob(8, 1000)
	h := HashOf(data)
	if err := s.PutChunk("t", h, data); err != nil {
		t.Fatal(err)
	}
	if err := s.PutChunk("t", h, data[:999]); err == nil {
		t.Fatal("accepted chunk with wrong hash")
	}
	got, err := s.ChunkData(h)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("chunk read: %v", err)
	}
}

func TestScrubFindsOrphansAndCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	mLive, err := s.WriteBlob("t", randomBlob(9, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	s.SetPins("owner", mLive.Hashes())
	mOrphan, err := s.WriteBlob("t", randomBlob(10, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	s.Unprotect("t")

	// Corrupt one live chunk file in place.
	bad := mLive.Chunks[0].Hash
	if err := os.WriteFile(filepath.Join(dir, bad.Hex()+chunkSuffix), []byte("rot"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphans == 0 || len(rep.Corrupt) != 1 || rep.Corrupt[0] != bad {
		t.Fatalf("scrub report wrong: %+v", rep)
	}
	if rep.Removed != 0 {
		t.Fatal("report-only scrub removed chunks")
	}

	rep, err = s.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed == 0 {
		t.Fatal("scrub with remove kept orphans")
	}
	if _, err := s.Get(mOrphan); err == nil {
		t.Fatal("orphan still readable after scrub remove")
	}
	if s.Contains(mLive.Chunks[1].Hash) == false {
		t.Fatal("scrub removed live chunk")
	}
}

// TestConcurrentPutSweep hammers the refcount/pin/sweep machinery from
// many goroutines; run under -race via the store package's race-cas
// target.
func TestConcurrentPutSweep(t *testing.T) {
	s, err := Open(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				blob := randomBlob(int64(g*1000+i%7), 30_000)
				m := s.Put(blob)
				if got, err := s.Get(m); err != nil || !bytes.Equal(got, blob) {
					t.Errorf("get: %v", err)
					return
				}
				token := string(rune('a' + g))
				if _, err := s.WriteBlob(token, blob); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				s.Unprotect(token)
				s.Release(m)
				if i%10 == 0 {
					s.Sweep()
				}
			}
		}(g)
	}
	wg.Wait()
}
