package ml

import (
	"fmt"
	"sort"

	"smarteryou/internal/linalg"
)

// KNN is a k-nearest-neighbours binary classifier. It reproduces the
// classifier used by the accelerometer-gait work of Nickel et al. that the
// paper compares against (Table I), and serves as an ablation baseline.
// Score is the signed fraction of neighbour votes in [-1, 1].
type KNN struct {
	// K is the number of neighbours (default 5, made odd to avoid ties).
	K int

	x   [][]float64
	y   []bool
	dim int
}

var _ BinaryClassifier = (*KNN)(nil)

// NewKNN returns a 5-NN classifier.
func NewKNN() *KNN { return &KNN{K: 5} }

// Fit memorizes the training set.
func (k *KNN) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	k.x = make([][]float64, len(x))
	for i, row := range x {
		k.x[i] = append([]float64(nil), row...)
	}
	k.y = append([]bool(nil), y...)
	k.dim = dim
	return nil
}

// Score implements BinaryClassifier.
func (k *KNN) Score(x []float64) (float64, error) {
	if k.x == nil {
		return 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if kk > len(k.x) {
		kk = len(k.x)
	}
	if kk%2 == 0 {
		kk-- // odd k avoids exact vote ties
		if kk == 0 {
			kk = 1
		}
	}
	type neighbour struct {
		dist float64
		pos  bool
	}
	ns := make([]neighbour, len(k.x))
	for i, row := range k.x {
		d, err := linalg.SquaredDistance(row, x)
		if err != nil {
			return 0, err
		}
		ns[i] = neighbour{dist: d, pos: k.y[i]}
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a].dist < ns[b].dist })
	votes := 0.0
	for i := 0; i < kk; i++ {
		votes += signLabel(ns[i].pos)
	}
	return votes / float64(kk), nil
}

// Predict implements BinaryClassifier.
func (k *KNN) Predict(x []float64) (bool, error) {
	s, err := k.Score(x)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}
