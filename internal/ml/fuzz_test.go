package ml

import (
	"encoding/json"
	"testing"
)

// FuzzKRRUnmarshal throws arbitrary JSON at the model decoder — the path
// that parses bundles downloaded from the network must never panic.
func FuzzKRRUnmarshal(f *testing.F) {
	f.Add([]byte(`{"rho":1,"kernel":"identity","primal":true,"dim":2,"w":[1,2]}`))
	f.Add([]byte(`{"kernel":"rbf","gamma":0.5,"primal":false,"dim":1,"alpha":[1],"support":[[2]]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"kernel":"wavelet"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var k KRR
		if err := json.Unmarshal(data, &k); err != nil {
			return
		}
		// A model that decodes must be safe to score against (errors are
		// fine, panics are not).
		_, _ = k.Score([]float64{1, 2})
	})
}

// FuzzTreeUnmarshal exercises the flattened-tree decoder, which must
// reject cyclic or out-of-range child references rather than recursing
// forever.
func FuzzTreeUnmarshal(f *testing.F) {
	f.Add([]byte(`{"dim":1,"labels":["a"],"nodes":[{"f":-1,"lab":"a"}]}`))
	f.Add([]byte(`{"dim":1,"labels":["a"],"nodes":[{"f":0,"t":0.5,"l":0,"r":0}]}`))
	f.Add([]byte(`{"dim":2,"labels":["a","b"],"nodes":[{"f":0,"t":1,"l":1,"r":2},{"f":-1,"lab":"a"},{"f":-1,"lab":"b"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tree DecisionTree
		if err := json.Unmarshal(data, &tree); err != nil {
			return
		}
		_, _ = tree.PredictClass([]float64{0.5, 0.5})
	})
}
