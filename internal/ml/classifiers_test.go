package ml

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVMSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x, y := twoBlobs(rng, 300, 6, 2, 0.5)
	s := NewSVM()
	if err := s.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, s, x, y); acc < 0.98 {
		t.Errorf("SVM training accuracy = %v, want >= 0.98", acc)
	}
}

func TestSVMDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x, y := twoBlobs(rng, 100, 4, 1.5, 0.8)
	a := NewSVM()
	b := NewSVM()
	if err := a.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if err := b.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	probe := []float64{0.3, -0.2, 0.5, 0.1}
	sa, _ := a.Score(probe)
	sb, _ := b.Score(probe)
	if sa != sb {
		t.Errorf("same seed, different scores: %v vs %v", sa, sb)
	}
}

func TestSVMErrors(t *testing.T) {
	s := NewSVM()
	if _, err := s.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Score err = %v", err)
	}
	if err := s.Fit(nil, nil); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("empty Fit err = %v", err)
	}
	bad := &SVM{Lambda: -1}
	if err := bad.Fit([][]float64{{1}, {2}}, []bool{true, false}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("negative lambda err = %v", err)
	}
	rng := rand.New(rand.NewSource(33))
	x, y := twoBlobs(rng, 20, 3, 2, 0.5)
	if err := s.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := s.Score([]float64{1}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim Score err = %v", err)
	}
}

func TestLinearRegressionSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x, y := twoBlobs(rng, 200, 5, 2, 0.5)
	l := NewLinearRegression()
	if err := l.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, l, x, y); acc < 0.98 {
		t.Errorf("linreg training accuracy = %v, want >= 0.98", acc)
	}
}

func TestLinearRegressionInterceptMatters(t *testing.T) {
	// Classes separated along x=5 vs x=7: without an intercept the
	// through-origin decision would misclassify everything on one side.
	rng := rand.New(rand.NewSource(35))
	var x [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		pos := i%2 == 0
		center := 5.0
		if pos {
			center = 7.0
		}
		x = append(x, []float64{center + rng.NormFloat64()*0.3})
		y = append(y, pos)
	}
	l := NewLinearRegression()
	if err := l.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, l, x, y); acc < 0.95 {
		t.Errorf("linreg with offset classes accuracy = %v, want >= 0.95", acc)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	l := NewLinearRegression()
	if _, err := l.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Score err = %v", err)
	}
	if _, err := l.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Predict err = %v", err)
	}
	if err := l.Fit([][]float64{{1}}, []bool{true}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("single-class Fit err = %v", err)
	}
}

func TestGaussianNBSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	x, y := twoBlobs(rng, 300, 6, 2, 0.7)
	g := NewGaussianNB()
	if err := g.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, g, x, y); acc < 0.97 {
		t.Errorf("NB training accuracy = %v, want >= 0.97", acc)
	}
}

func TestGaussianNBUnbalancedPriors(t *testing.T) {
	// With identical likelihoods, the prior must break the tie toward the
	// majority class.
	rng := rand.New(rand.NewSource(37))
	var x [][]float64
	var y []bool
	for i := 0; i < 90; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		y = append(y, false)
	}
	for i := 0; i < 10; i++ {
		x = append(x, []float64{rng.NormFloat64()})
		y = append(y, true)
	}
	g := NewGaussianNB()
	if err := g.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	got, err := g.Predict([]float64{0})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if got {
		t.Errorf("majority-negative data should predict negative at the shared mode")
	}
}

func TestGaussianNBConstantFeature(t *testing.T) {
	// A feature that never varies must not produce NaN/Inf scores.
	x := [][]float64{{1, 0}, {1, 1}, {1, 0.1}, {1, 0.9}}
	y := []bool{false, true, false, true}
	g := NewGaussianNB()
	if err := g.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	s, err := g.Score([]float64{1, 0.5})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if s != s || s > 1e308 || s < -1e308 { // NaN or Inf check
		t.Errorf("constant feature produced degenerate score %v", s)
	}
}

func TestGaussianNBErrors(t *testing.T) {
	g := NewGaussianNB()
	if _, err := g.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Score err = %v", err)
	}
	if err := g.Fit(nil, nil); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("empty Fit err = %v", err)
	}
}

func TestKNNSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	x, y := twoBlobs(rng, 200, 4, 2, 0.5)
	k := NewKNN()
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, k, x, y); acc < 0.98 {
		t.Errorf("kNN training accuracy = %v, want >= 0.98", acc)
	}
}

func TestKNNScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := twoBlobs(rng, 20+rng.Intn(50), 3, 1, 1)
		k := &KNN{K: 1 + rng.Intn(10)}
		if err := k.Fit(x, y); err != nil {
			return false
		}
		probe := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		s, err := k.Score(probe)
		if err != nil {
			return false
		}
		return s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKNNErrors(t *testing.T) {
	k := NewKNN()
	if _, err := k.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Score err = %v", err)
	}
	if _, err := k.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Predict err = %v", err)
	}
	rng := rand.New(rand.NewSource(39))
	x, y := twoBlobs(rng, 20, 2, 2, 0.3)
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := k.Score([]float64{1, 2, 3}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim Score err = %v", err)
	}
}

// Every classifier should learn the same easy problem; this guards the
// shared interface contract used by the Table VI experiment.
func TestAllClassifiersOnSharedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x, y := twoBlobs(rng, 400, 8, 1.5, 0.6)
	classifiers := map[string]BinaryClassifier{
		"krr":    NewKRR(0.1),
		"svm":    NewSVM(),
		"linreg": NewLinearRegression(),
		"nb":     NewGaussianNB(),
		"knn":    NewKNN(),
	}
	for name, c := range classifiers {
		if err := c.Fit(x, y); err != nil {
			t.Fatalf("%s Fit: %v", name, err)
		}
		if acc := accuracy(t, c, x, y); acc < 0.95 {
			t.Errorf("%s accuracy = %v, want >= 0.95", name, acc)
		}
	}
}
