package ml

import (
	"fmt"

	"smarteryou/internal/linalg"
)

// LinearRegression classifies by least-squares regression onto +1/-1
// targets with an intercept — one of the two weak baselines in Table VI.
// A tiny ridge term keeps the normal equations well-posed when features are
// collinear; unlike KRR it is fixed and not treated as a tuning parameter.
type LinearRegression struct {
	w   []float64 // last element is the intercept
	dim int
}

var _ BinaryClassifier = (*LinearRegression)(nil)

// NewLinearRegression returns an untrained linear-regression classifier.
func NewLinearRegression() *LinearRegression { return &LinearRegression{} }

// Fit solves the normal equations (A^T A + eps*I) w = A^T y where A is the
// design matrix with a trailing column of ones.
func (l *LinearRegression) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	aug := dim + 1
	ata := linalg.NewMatrix(aug, aug)
	aty := make([]float64, aug)
	row := make([]float64, aug)
	for i, sample := range x {
		copy(row, sample)
		row[dim] = 1
		target := signLabel(y[i])
		for a := 0; a < aug; a++ {
			aty[a] += row[a] * target
			for b := a; b < aug; b++ {
				ata.Set(a, b, ata.At(a, b)+row[a]*row[b])
			}
		}
	}
	for a := 0; a < aug; a++ {
		for b := 0; b < a; b++ {
			ata.Set(a, b, ata.At(b, a))
		}
	}
	shifted, err := ata.AddDiagonal(1e-8)
	if err != nil {
		return fmt.Errorf("ml: linreg: %w", err)
	}
	w, err := linalg.SolveSPD(shifted, aty)
	if err != nil {
		return fmt.Errorf("ml: linreg solve: %w", err)
	}
	l.w = w
	l.dim = dim
	return nil
}

// Score implements BinaryClassifier.
func (l *LinearRegression) Score(x []float64) (float64, error) {
	if l.w == nil {
		return 0, ErrNotFitted
	}
	if len(x) != l.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), l.dim)
	}
	v := l.w[l.dim] // intercept
	for j, xi := range x {
		v += l.w[j] * xi
	}
	return v, nil
}

// Predict implements BinaryClassifier.
func (l *LinearRegression) Predict(x []float64) (bool, error) {
	v, err := l.Score(x)
	if err != nil {
		return false, err
	}
	return v > 0, nil
}
