// Package ml implements, from scratch, every machine-learning algorithm the
// SmarterYou paper evaluates or depends on:
//
//   - Kernel ridge regression (KRR) — the paper's chosen authentication
//     classifier (Section V-F2), with both the dual solve of Eq. 6 and the
//     primal solve of Eq. 7, and the identity/RBF kernels.
//   - A linear soft-margin SVM trained with the Pegasos stochastic
//     sub-gradient method — the strongest baseline in Table VI.
//   - Regularized linear (ridge) regression and Gaussian naive Bayes — the
//     weaker baselines in Table VI.
//   - CART decision trees and Random Forests — the context-detection
//     classifier (Section V-E).
//   - k-nearest neighbours — the classifier used by the related gait work
//     the paper compares against (Nickel et al.), used here in ablations.
//
// Go has no canonical ML library, so everything is implemented directly on
// the linalg substrate with deterministic, seedable training.
package ml

import (
	"errors"
	"fmt"
)

// ErrNotFitted is returned when prediction is attempted before training.
var ErrNotFitted = errors.New("ml: model has not been fitted")

// ErrBadTrainingSet is returned for empty or inconsistent training inputs.
var ErrBadTrainingSet = errors.New("ml: bad training set")

// BinaryClassifier is a two-class classifier with a real-valued decision
// function. By convention, Score > 0 predicts the positive class
// ("legitimate user" in the authentication setting) and the magnitude of
// Score is the confidence — exactly the paper's Confidence Score
// CS(k) = x_k^T w* when the model is KRR.
type BinaryClassifier interface {
	// Fit trains on feature rows x with labels y (true = positive class).
	Fit(x [][]float64, y []bool) error
	// Score returns the decision value for one feature vector.
	Score(x []float64) (float64, error)
	// Predict returns Score(x) > 0.
	Predict(x []float64) (bool, error)
}

// MultiClassifier assigns one of a set of string labels to a feature
// vector. The context-detection Random Forest implements this.
type MultiClassifier interface {
	FitClasses(x [][]float64, labels []string) error
	PredictClass(x []float64) (string, error)
}

// checkTrainingSet validates the common preconditions of Fit
// implementations: non-empty, rectangular, with matching label count and
// both classes present.
func checkTrainingSet(x [][]float64, y []bool) (dim int, err error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("%w: no samples", ErrBadTrainingSet)
	}
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: %d samples but %d labels", ErrBadTrainingSet, len(x), len(y))
	}
	dim = len(x[0])
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional features", ErrBadTrainingSet)
	}
	for i, row := range x {
		if len(row) != dim {
			return 0, fmt.Errorf("%w: sample %d has %d features, want %d", ErrBadTrainingSet, i, len(row), dim)
		}
	}
	var pos, neg bool
	for _, label := range y {
		if label {
			pos = true
		} else {
			neg = true
		}
	}
	if !pos || !neg {
		return 0, fmt.Errorf("%w: training set must contain both classes", ErrBadTrainingSet)
	}
	return dim, nil
}

// signLabel maps a boolean label to the +1/-1 regression target used by
// KRR, SVM and linear regression.
func signLabel(b bool) float64 {
	if b {
		return 1
	}
	return -1
}
