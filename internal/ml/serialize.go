package ml

import (
	"encoding/json"
	"fmt"
)

// Model serialization: the Authentication Server trains models in the
// cloud and downloads them to the smartphone (Section IV-A3), so the
// trained state of the classifiers must round-trip through a wire format.
// JSON is used because the message protocol in internal/transport is JSON.

// krrModelJSON is the wire form of a trained KRR model.
type krrModelJSON struct {
	Rho     float64     `json:"rho"`
	Kernel  string      `json:"kernel"`
	Gamma   float64     `json:"gamma,omitempty"`
	Primal  bool        `json:"primal"`
	Dim     int         `json:"dim"`
	W       []float64   `json:"w,omitempty"`
	Alpha   []float64   `json:"alpha,omitempty"`
	Support [][]float64 `json:"support,omitempty"`
}

// MarshalJSON implements json.Marshaler for trained KRR models.
func (k *KRR) MarshalJSON() ([]byte, error) {
	m := krrModelJSON{
		Rho:     k.Rho,
		Kernel:  k.kernel().Name(),
		Primal:  k.primal,
		Dim:     k.dim,
		W:       k.w,
		Alpha:   k.alpha,
		Support: k.support,
	}
	if rbf, ok := k.kernel().(RBFKernel); ok {
		m.Gamma = rbf.Gamma
	}
	return json.Marshal(m)
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *KRR) UnmarshalJSON(data []byte) error {
	var m krrModelJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("ml: decode krr model: %w", err)
	}
	switch m.Kernel {
	case "identity", "":
		k.Kernel = IdentityKernel{}
	case "rbf":
		k.Kernel = RBFKernel{Gamma: m.Gamma}
	default:
		return fmt.Errorf("ml: unknown kernel %q", m.Kernel)
	}
	if m.Primal && len(m.W) != m.Dim {
		return fmt.Errorf("ml: primal model has %d weights for dim %d", len(m.W), m.Dim)
	}
	if !m.Primal && len(m.Alpha) != len(m.Support) {
		return fmt.Errorf("ml: dual model has %d coefficients for %d support vectors", len(m.Alpha), len(m.Support))
	}
	k.Rho = m.Rho
	k.primal = m.Primal
	k.dim = m.Dim
	k.w = m.W
	k.alpha = m.Alpha
	k.support = m.Support
	return nil
}

// treeNodeJSON is the wire form of one decision-tree node, flattened into
// an array with child indices so the encoding is non-recursive.
type treeNodeJSON struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int     `json:"l,omitempty"`
	Right     int     `json:"r,omitempty"`
	Label     string  `json:"lab,omitempty"`
}

type treeModelJSON struct {
	NDim   int            `json:"dim"`
	Labels []string       `json:"labels"`
	Nodes  []treeNodeJSON `json:"nodes"`
}

// MarshalJSON implements json.Marshaler for trained decision trees.
func (t *DecisionTree) MarshalJSON() ([]byte, error) {
	m := treeModelJSON{NDim: t.nDim, Labels: t.labels}
	var flatten func(n *treeNode) int
	flatten = func(n *treeNode) int {
		idx := len(m.Nodes)
		m.Nodes = append(m.Nodes, treeNodeJSON{Feature: -1})
		if n == nil {
			return idx
		}
		entry := treeNodeJSON{Feature: n.feature, Threshold: n.threshold, Label: n.label}
		if n.feature >= 0 {
			entry.Left = flatten(n.left)
			entry.Right = flatten(n.right)
		}
		m.Nodes[idx] = entry
		return idx
	}
	if t.root != nil {
		flatten(t.root)
	}
	return json.Marshal(m)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *DecisionTree) UnmarshalJSON(data []byte) error {
	var m treeModelJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("ml: decode tree model: %w", err)
	}
	t.nDim = m.NDim
	t.labels = m.Labels
	if len(m.Nodes) == 0 {
		t.root = nil
		return nil
	}
	var build func(idx int) (*treeNode, error)
	build = func(idx int) (*treeNode, error) {
		if idx < 0 || idx >= len(m.Nodes) {
			return nil, fmt.Errorf("ml: tree node index %d out of range", idx)
		}
		e := m.Nodes[idx]
		n := &treeNode{feature: e.Feature, threshold: e.Threshold, label: e.Label}
		if e.Feature >= 0 {
			// Children always follow their parent in the flattened array,
			// which rules out cycles.
			if e.Left <= idx || e.Right <= idx {
				return nil, fmt.Errorf("ml: tree node %d has non-forward child", idx)
			}
			var err error
			if n.left, err = build(e.Left); err != nil {
				return nil, err
			}
			if n.right, err = build(e.Right); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return err
	}
	t.root = root
	return nil
}

type forestModelJSON struct {
	NDim   int             `json:"dim"`
	Labels []string        `json:"labels"`
	Trees  []*DecisionTree `json:"trees"`
}

// MarshalJSON implements json.Marshaler for trained random forests.
func (rf *RandomForest) MarshalJSON() ([]byte, error) {
	return json.Marshal(forestModelJSON{NDim: rf.nDim, Labels: rf.labels, Trees: rf.trees})
}

// UnmarshalJSON implements json.Unmarshaler.
func (rf *RandomForest) UnmarshalJSON(data []byte) error {
	var m forestModelJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("ml: decode forest model: %w", err)
	}
	rf.nDim = m.NDim
	rf.labels = m.Labels
	rf.trees = m.Trees
	return nil
}
