package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RandomForest is a bagged ensemble of CART trees with per-split feature
// subsampling — the classifier Section V-E1 selects for user-agnostic
// context detection.
type RandomForest struct {
	// Trees is the ensemble size (default 30).
	Trees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// MinLeaf is each tree's minimum leaf size (default 2).
	MinLeaf int
	// FeatureSubset is the per-split feature sample size; 0 means
	// sqrt(nFeatures), the standard forest heuristic.
	FeatureSubset int
	// Seed makes bootstrap sampling deterministic.
	Seed int64

	trees  []*DecisionTree
	labels []string
	nDim   int
}

var _ MultiClassifier = (*RandomForest)(nil)

// NewRandomForest returns a forest configured for the 14-dimensional
// context feature vectors.
func NewRandomForest() *RandomForest {
	return &RandomForest{Trees: 30, MaxDepth: 12, MinLeaf: 2, Seed: 1}
}

// FitClasses implements MultiClassifier: each tree is trained on a
// bootstrap resample of the data with feature subsampling at every split.
func (rf *RandomForest) FitClasses(x [][]float64, labels []string) error {
	if len(x) == 0 {
		return fmt.Errorf("%w: no samples", ErrBadTrainingSet)
	}
	if len(x) != len(labels) {
		return fmt.Errorf("%w: %d samples but %d labels", ErrBadTrainingSet, len(x), len(labels))
	}
	nTrees := rf.Trees
	if nTrees <= 0 {
		nTrees = 30
	}
	rf.nDim = len(x[0])
	subset := rf.FeatureSubset
	if subset <= 0 {
		subset = int(math.Sqrt(float64(rf.nDim)))
		if subset < 1 {
			subset = 1
		}
	}
	set := map[string]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	rf.labels = rf.labels[:0]
	for l := range set {
		rf.labels = append(rf.labels, l)
	}
	sort.Strings(rf.labels)

	rng := rand.New(rand.NewSource(rf.Seed))
	rf.trees = make([]*DecisionTree, nTrees)
	n := len(x)
	bootX := make([][]float64, n)
	bootY := make([]string, n)
	for ti := 0; ti < nTrees; ti++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bootX[i] = x[j]
			bootY[i] = labels[j]
		}
		tree := &DecisionTree{
			MaxDepth:      rf.MaxDepth,
			MinLeaf:       rf.MinLeaf,
			FeatureSubset: subset,
			Seed:          rng.Int63(),
		}
		if err := tree.FitClasses(bootX, bootY); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", ti, err)
		}
		rf.trees[ti] = tree
	}
	return nil
}

// PredictClass returns the majority vote of the ensemble, breaking ties on
// sorted label order for determinism.
func (rf *RandomForest) PredictClass(x []float64) (string, error) {
	votes, err := rf.Votes(x)
	if err != nil {
		return "", err
	}
	best, bestVotes := "", -1
	for _, l := range rf.labels {
		if v := votes[l]; v > bestVotes {
			best, bestVotes = l, v
		}
	}
	return best, nil
}

// Votes returns the raw per-label vote counts, which the context detector
// exposes as a detection confidence.
func (rf *RandomForest) Votes(x []float64) (map[string]int, error) {
	if len(rf.trees) == 0 {
		return nil, ErrNotFitted
	}
	if len(x) != rf.nDim {
		return nil, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), rf.nDim)
	}
	votes := make(map[string]int, len(rf.labels))
	for _, tree := range rf.trees {
		label, err := tree.PredictClass(x)
		if err != nil {
			return nil, err
		}
		votes[label]++
	}
	return votes, nil
}

// Labels returns the sorted class labels seen at training time.
func (rf *RandomForest) Labels() []string {
	return append([]string(nil), rf.labels...)
}
