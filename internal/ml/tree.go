package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DecisionTree is a CART classification tree with Gini impurity splits,
// supporting arbitrary string class labels. It is the base learner of the
// Random Forest used for context detection (Section V-E1).
type DecisionTree struct {
	// MaxDepth bounds tree depth; 0 means unbounded.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// FeatureSubset, when > 0, restricts each split to that many features
	// sampled at random — the decorrelation mechanism of random forests.
	FeatureSubset int
	// Seed drives feature subsampling.
	Seed int64

	root   *treeNode
	nDim   int
	labels []string
}

type treeNode struct {
	// Leaf prediction (when feature < 0) or split definition.
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     string
}

var _ MultiClassifier = (*DecisionTree)(nil)

// NewDecisionTree returns a tree with sensible defaults for the
// context-detection feature vectors.
func NewDecisionTree() *DecisionTree {
	return &DecisionTree{MaxDepth: 12, MinLeaf: 2}
}

// FitClasses implements MultiClassifier.
func (t *DecisionTree) FitClasses(x [][]float64, labels []string) error {
	if len(x) == 0 {
		return fmt.Errorf("%w: no samples", ErrBadTrainingSet)
	}
	if len(x) != len(labels) {
		return fmt.Errorf("%w: %d samples but %d labels", ErrBadTrainingSet, len(x), len(labels))
	}
	t.nDim = len(x[0])
	for i, row := range x {
		if len(row) != t.nDim {
			return fmt.Errorf("%w: sample %d has %d features, want %d", ErrBadTrainingSet, i, len(row), t.nDim)
		}
	}
	set := map[string]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	t.labels = make([]string, 0, len(set))
	for l := range set {
		t.labels = append(t.labels, l)
	}
	sort.Strings(t.labels)

	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	minLeaf := t.MinLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}
	rng := rand.New(rand.NewSource(t.Seed))
	t.root = t.grow(x, labels, idx, 0, minLeaf, rng)
	return nil
}

// grow recursively builds the tree over the sample indices idx.
func (t *DecisionTree) grow(x [][]float64, labels []string, idx []int, depth, minLeaf int, rng *rand.Rand) *treeNode {
	counts := map[string]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	majority, best := "", -1
	// Deterministic tie-break on the sorted label order.
	for _, l := range t.labels {
		if c := counts[l]; c > best {
			majority, best = l, c
		}
	}
	pure := best == len(idx)
	if pure || (t.MaxDepth > 0 && depth >= t.MaxDepth) || len(idx) < 2*minLeaf {
		return &treeNode{feature: -1, label: majority}
	}

	feature, threshold, ok := t.bestSplit(x, labels, idx, minLeaf, rng)
	if !ok {
		return &treeNode{feature: -1, label: majority}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{feature: -1, label: majority}
	}
	return &treeNode{
		feature:   feature,
		threshold: threshold,
		left:      t.grow(x, labels, leftIdx, depth+1, minLeaf, rng),
		right:     t.grow(x, labels, rightIdx, depth+1, minLeaf, rng),
	}
}

// bestSplit finds the (feature, threshold) pair minimizing weighted Gini
// impurity over candidate features.
func (t *DecisionTree) bestSplit(x [][]float64, labels []string, idx []int, minLeaf int, rng *rand.Rand) (int, float64, bool) {
	features := make([]int, t.nDim)
	for i := range features {
		features[i] = i
	}
	if t.FeatureSubset > 0 && t.FeatureSubset < t.nDim {
		rng.Shuffle(len(features), func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.FeatureSubset]
	}

	bestGini := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0
	type valueLabel struct {
		v float64
		l string
	}
	vl := make([]valueLabel, len(idx))
	for _, f := range features {
		for k, i := range idx {
			vl[k] = valueLabel{v: x[i][f], l: labels[i]}
		}
		sort.Slice(vl, func(a, b int) bool { return vl[a].v < vl[b].v })

		leftCounts := map[string]int{}
		rightCounts := map[string]int{}
		for _, e := range vl {
			rightCounts[e.l]++
		}
		nLeft, nRight := 0, len(vl)
		for k := 0; k < len(vl)-1; k++ {
			leftCounts[vl[k].l]++
			rightCounts[vl[k].l]--
			nLeft++
			nRight--
			if vl[k].v == vl[k+1].v {
				continue // cannot split between equal values
			}
			if nLeft < minLeaf || nRight < minLeaf {
				continue
			}
			g := weightedGini(leftCounts, nLeft, rightCounts, nRight)
			if g < bestGini {
				bestGini = g
				bestFeature = f
				bestThreshold = (vl[k].v + vl[k+1].v) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

func weightedGini(left map[string]int, nLeft int, right map[string]int, nRight int) float64 {
	return (float64(nLeft)*gini(left, nLeft) + float64(nRight)*gini(right, nRight)) /
		float64(nLeft+nRight)
}

func gini(counts map[string]int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// PredictClass implements MultiClassifier.
func (t *DecisionTree) PredictClass(x []float64) (string, error) {
	if t.root == nil {
		return "", ErrNotFitted
	}
	if len(x) != t.nDim {
		return "", fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), t.nDim)
	}
	node := t.root
	for node.feature >= 0 {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.label, nil
}

// Depth returns the depth of the fitted tree (0 for a single leaf), for
// tests and diagnostics.
func (t *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}
