package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIncrementalKRRMatchesBatchPrimal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x, y := twoBlobs(rng, 80, 5, 1.5, 0.8)

	batch := &KRR{Rho: 0.7, Kernel: IdentityKernel{}, Mode: KRRModePrimal}
	if err := batch.Fit(x, y); err != nil {
		t.Fatalf("batch Fit: %v", err)
	}
	inc, err := NewIncrementalKRR(0.7, 5)
	if err != nil {
		t.Fatalf("NewIncrementalKRR: %v", err)
	}
	for i, row := range x {
		if err := inc.AddSample(row, y[i]); err != nil {
			t.Fatalf("AddSample %d: %v", i, err)
		}
	}
	probe := []float64{0.3, -0.4, 1.1, 0.2, -0.9}
	sb, _ := batch.Score(probe)
	si, err := inc.Score(probe)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if math.Abs(sb-si) > 1e-8 {
		t.Errorf("incremental score %v != batch primal %v", si, sb)
	}
	if inc.N() != 80 {
		t.Errorf("N = %d, want 80", inc.N())
	}
}

func TestIncrementalKRRFitInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, y := twoBlobs(rng, 100, 4, 2, 0.5)
	inc, err := NewIncrementalKRR(1, 4)
	if err != nil {
		t.Fatalf("NewIncrementalKRR: %v", err)
	}
	if err := inc.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, inc, x, y); acc < 0.99 {
		t.Errorf("accuracy = %v, want >= 0.99 on separable data", acc)
	}
}

// Property: unlearning a sample restores the exact pre-addition model —
// the defining guarantee of machine unlearning.
func TestIncrementalKRRUnlearnRestoresProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(5)
		x, y := twoBlobs(rng, 20+rng.Intn(30), dim, 1.5, 0.8)
		inc, err := NewIncrementalKRR(1, dim)
		if err != nil {
			t.Fatalf("NewIncrementalKRR: %v", err)
		}
		for i, row := range x {
			if err := inc.AddSample(row, y[i]); err != nil {
				t.Fatalf("AddSample: %v", err)
			}
		}
		before := inc.Weights()
		extra := make([]float64, dim)
		for j := range extra {
			extra[j] = rng.NormFloat64() * 2
		}
		label := rng.Intn(2) == 0
		if err := inc.AddSample(extra, label); err != nil {
			t.Fatalf("AddSample extra: %v", err)
		}
		if err := inc.RemoveSample(extra, label); err != nil {
			t.Fatalf("RemoveSample: %v", err)
		}
		after := inc.Weights()
		for j := range before {
			if math.Abs(before[j]-after[j]) > 1e-7 {
				t.Fatalf("seed %d: weight %d not restored: %v -> %v", seed, j, before[j], after[j])
			}
		}
	}
}

// Property: sliding-window model (add new, remove oldest) stays equivalent
// to a batch model trained on the window contents.
func TestIncrementalKRRSlidingWindowProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 3
		x, y := twoBlobs(rng, 40, dim, 1.5, 0.8)
		const window = 20
		inc, err := NewIncrementalKRR(1, dim)
		if err != nil {
			return false
		}
		for i := 0; i < window; i++ {
			if err := inc.AddSample(x[i], y[i]); err != nil {
				return false
			}
		}
		for i := window; i < len(x); i++ {
			if err := inc.AddSample(x[i], y[i]); err != nil {
				return false
			}
			if err := inc.RemoveSample(x[i-window], y[i-window]); err != nil {
				return false
			}
		}
		// Batch model over the final window.
		batch := &KRR{Rho: 1, Kernel: IdentityKernel{}, Mode: KRRModePrimal}
		if err := batch.Fit(x[len(x)-window:], y[len(y)-window:]); err != nil {
			// The final window may be single-class; skip those draws.
			return true
		}
		probe := make([]float64, dim)
		for j := range probe {
			probe[j] = rng.NormFloat64()
		}
		sb, _ := batch.Score(probe)
		si, err := inc.Score(probe)
		if err != nil {
			return false
		}
		return math.Abs(sb-si) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalKRRValidation(t *testing.T) {
	if _, err := NewIncrementalKRR(0, 3); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("rho=0 err = %v", err)
	}
	if _, err := NewIncrementalKRR(1, 0); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("dim=0 err = %v", err)
	}
	inc, err := NewIncrementalKRR(1, 3)
	if err != nil {
		t.Fatalf("NewIncrementalKRR: %v", err)
	}
	if _, err := inc.Score([]float64{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("empty Score err = %v", err)
	}
	if _, err := inc.Predict([]float64{1, 2, 3}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("empty Predict err = %v", err)
	}
	if err := inc.AddSample([]float64{1}, true); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim add err = %v", err)
	}
	if err := inc.RemoveSample([]float64{1, 2, 3}, true); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("remove from empty err = %v", err)
	}
	if err := inc.AddSample([]float64{1, 0, 0}, true); err != nil {
		t.Fatalf("AddSample: %v", err)
	}
	if err := inc.RemoveSample([]float64{0, 5, 0}, false); err != nil {
		t.Logf("removing a never-added vector: %v (feasible removals cannot always be detected)", err)
	}
	// Removing a vector whose downdate is infeasible must error.
	inc2, _ := NewIncrementalKRR(1, 2)
	if err := inc2.AddSample([]float64{1, 0}, true); err != nil {
		t.Fatalf("AddSample: %v", err)
	}
	if err := inc2.RemoveSample([]float64{100, 0}, true); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("infeasible downdate err = %v, want ErrBadTrainingSet", err)
	}
}

func TestIncrementalKRRFitRejectsWrongDim(t *testing.T) {
	inc, _ := NewIncrementalKRR(1, 3)
	if err := inc.Fit([][]float64{{1, 2}, {3, 4}}, []bool{true, false}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim Fit err = %v", err)
	}
}
