package ml

import (
	"fmt"
	"math"

	"smarteryou/internal/linalg"
)

// Kernel is a positive-definite kernel function on feature vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) (float64, error)
	// Name identifies the kernel for model serialization.
	Name() string
}

// IdentityKernel is the linear kernel k(a,b) = a.b. With it, KRR reduces to
// ridge regression and admits the primal solve of the paper's Eq. 7, whose
// cost depends on the feature dimension M (28) rather than the training-set
// size N (~800) — the complexity reduction Section V-H1 highlights.
type IdentityKernel struct{}

// Eval implements Kernel.
func (IdentityKernel) Eval(a, b []float64) (float64, error) { return linalg.Dot(a, b) }

// Name implements Kernel.
func (IdentityKernel) Name() string { return "identity" }

// RBFKernel is the Gaussian kernel k(a,b) = exp(-gamma * ||a-b||^2).
type RBFKernel struct {
	Gamma float64
}

// Eval implements Kernel.
func (k RBFKernel) Eval(a, b []float64) (float64, error) {
	d, err := linalg.SquaredDistance(a, b)
	if err != nil {
		return 0, err
	}
	return math.Exp(-k.Gamma * d), nil
}

// Name implements Kernel.
func (k RBFKernel) Name() string { return "rbf" }

// KRRMode selects which of the two mathematically equivalent solutions of
// the KRR objective is computed.
type KRRMode int

const (
	// KRRModeAuto picks primal when the feature dimension is smaller than
	// the training-set size (and the kernel is the identity), else dual.
	KRRModeAuto KRRMode = iota + 1
	// KRRModePrimal solves Eq. 7: w* = (S + rho*I_J)^{-1} Phi y, an MxM
	// system. Only valid for the identity kernel.
	KRRModePrimal
	// KRRModeDual solves Eq. 6: alpha = (K + rho*I_N)^{-1} y, an NxN
	// system. Valid for any kernel.
	KRRModeDual
)

// KRR is the kernel ridge regression classifier of Section V-F2. Labels are
// regressed to +1/-1 and the decision function is the regression value; its
// sign is the class and its magnitude is the paper's Confidence Score.
type KRR struct {
	// Rho is the ridge regularization strength (rho in Eq. 5). Must be > 0.
	Rho float64
	// Kernel defaults to IdentityKernel when nil.
	Kernel Kernel
	// Mode selects the primal or dual solver; defaults to KRRModeAuto.
	Mode KRRMode

	// Trained state. In primal mode w holds the explicit weight vector; in
	// dual mode alpha holds the dual coefficients and support the training
	// rows.
	w       []float64
	alpha   []float64
	support [][]float64
	primal  bool
	dim     int
}

var _ BinaryClassifier = (*KRR)(nil)

// NewKRR returns a KRR classifier with the paper's configuration: identity
// kernel, automatic primal/dual selection, and the given ridge strength.
func NewKRR(rho float64) *KRR {
	return &KRR{Rho: rho, Kernel: IdentityKernel{}, Mode: KRRModeAuto}
}

func (k *KRR) kernel() Kernel {
	if k.Kernel == nil {
		return IdentityKernel{}
	}
	return k.Kernel
}

// Fit trains the classifier. It returns an error for degenerate training
// sets, non-positive Rho, or a primal-mode request with a non-identity
// kernel.
func (k *KRR) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	if k.Rho <= 0 {
		return fmt.Errorf("%w: rho must be positive, got %g", ErrBadTrainingSet, k.Rho)
	}
	_, isIdentity := k.kernel().(IdentityKernel)
	mode := k.Mode
	if mode == 0 {
		mode = KRRModeAuto
	}
	if mode == KRRModePrimal && !isIdentity {
		return fmt.Errorf("%w: primal KRR requires the identity kernel", ErrBadTrainingSet)
	}
	usePrimal := mode == KRRModePrimal || (mode == KRRModeAuto && isIdentity && dim < len(x))

	targets := make([]float64, len(y))
	for i, label := range y {
		targets[i] = signLabel(label)
	}

	if usePrimal {
		return k.fitPrimal(x, targets, dim)
	}
	return k.fitDual(x, targets, dim)
}

// fitPrimal realizes Eq. 7: w* = (S + rho*I_M)^{-1} X y with S = X X^T,
// where X is the M x N matrix whose columns are training vectors. The
// linear system is SPD, so it is solved by Cholesky in O(M^3).
func (k *KRR) fitPrimal(x [][]float64, targets []float64, dim int) error {
	// S = sum_i x_i x_i^T, accumulated directly in M x M.
	s := linalg.NewMatrix(dim, dim)
	xy := make([]float64, dim)
	for i, row := range x {
		for a := 0; a < dim; a++ {
			va := row[a]
			xy[a] += va * targets[i]
			for b := a; b < dim; b++ {
				s.Set(a, b, s.At(a, b)+va*row[b])
			}
		}
	}
	for a := 0; a < dim; a++ {
		for b := 0; b < a; b++ {
			s.Set(a, b, s.At(b, a))
		}
	}
	shifted, err := s.AddDiagonal(k.Rho)
	if err != nil {
		return fmt.Errorf("ml: krr primal: %w", err)
	}
	w, err := linalg.SolveSPD(shifted, xy)
	if err != nil {
		return fmt.Errorf("ml: krr primal solve: %w", err)
	}
	k.w = w
	k.alpha = nil
	k.support = nil
	k.primal = true
	k.dim = dim
	return nil
}

// fitDual realizes Eq. 6: alpha = (K + rho*I_N)^{-1} y with K_ij =
// k(x_i, x_j), solved by Cholesky in O(N^3). The decision function is
// f(x) = sum_i alpha_i k(x_i, x).
func (k *KRR) fitDual(x [][]float64, targets []float64, dim int) error {
	n := len(x)
	km := linalg.NewMatrix(n, n)
	kern := k.kernel()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v, err := kern.Eval(x[i], x[j])
			if err != nil {
				return fmt.Errorf("ml: krr kernel: %w", err)
			}
			km.Set(i, j, v)
			km.Set(j, i, v)
		}
	}
	shifted, err := km.AddDiagonal(k.Rho)
	if err != nil {
		return fmt.Errorf("ml: krr dual: %w", err)
	}
	alpha, err := linalg.SolveSPD(shifted, targets)
	if err != nil {
		return fmt.Errorf("ml: krr dual solve: %w", err)
	}
	k.alpha = alpha
	k.support = make([][]float64, n)
	for i, row := range x {
		k.support[i] = append([]float64(nil), row...)
	}
	k.w = nil
	k.primal = false
	k.dim = dim
	return nil
}

// Score returns the regression value f(x); its sign is the predicted class
// and its magnitude is the Confidence Score of Section V-I.
func (k *KRR) Score(x []float64) (float64, error) {
	switch {
	case k.primal && k.w != nil:
		if len(x) != k.dim {
			return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
		}
		return linalg.Dot(k.w, x)
	case !k.primal && k.alpha != nil:
		if len(x) != k.dim {
			return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
		}
		kern := k.kernel()
		s := 0.0
		for i, sv := range k.support {
			v, err := kern.Eval(sv, x)
			if err != nil {
				return 0, err
			}
			s += k.alpha[i] * v
		}
		return s, nil
	default:
		return 0, ErrNotFitted
	}
}

// Predict implements BinaryClassifier.
func (k *KRR) Predict(x []float64) (bool, error) {
	s, err := k.Score(x)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}

// PrimalKRR constructs a fitted primal (identity-kernel) KRR directly
// from an explicit weight vector. The incremental-refresh path maintains
// weights in an IncrementalKRR and uses this to package them as a
// regular KRR, so a refreshed model serializes and scores exactly like a
// batch-trained one.
func PrimalKRR(rho float64, w []float64) (*KRR, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("%w: rho must be positive, got %g", ErrBadTrainingSet, rho)
	}
	if len(w) == 0 {
		return nil, fmt.Errorf("%w: empty weight vector", ErrBadTrainingSet)
	}
	return &KRR{
		Rho:    rho,
		Kernel: IdentityKernel{},
		Mode:   KRRModePrimal,
		w:      append([]float64(nil), w...),
		primal: true,
		dim:    len(w),
	}, nil
}

// Weights returns a copy of the primal weight vector, or nil when the model
// was trained in dual mode. The retraining monitor uses it to compute
// confidence scores without going through the classifier.
func (k *KRR) Weights() []float64 {
	if !k.primal || k.w == nil {
		return nil
	}
	return append([]float64(nil), k.w...)
}

// IsPrimal reports whether the fitted model used the primal (Eq. 7) solve.
func (k *KRR) IsPrimal() bool { return k.primal }
