package ml

import (
	"fmt"
	"math/rand"
)

// SVM is a linear soft-margin support vector machine trained with the
// Pegasos primal stochastic sub-gradient method. It is the strongest
// baseline in the paper's Table VI: accuracy close to KRR but with a
// noticeably more expensive training loop (many passes over the data versus
// KRR's single linear solve) — the trade-off Section V-F2 calls out.
type SVM struct {
	// Lambda is the regularization strength of the Pegasos objective.
	Lambda float64
	// Epochs is the number of full passes over the training data.
	Epochs int
	// Seed makes the stochastic training deterministic.
	Seed int64

	w    []float64
	bias float64
	dim  int
}

var _ BinaryClassifier = (*SVM)(nil)

// NewSVM returns an SVM with defaults that converge reliably on the
// standardized 28-dimensional authentication vectors.
func NewSVM() *SVM {
	return &SVM{Lambda: 1e-3, Epochs: 30, Seed: 1}
}

// Fit trains with Pegasos: at step t, draw one sample, step with learning
// rate 1/(lambda*t) on the hinge sub-gradient, and shrink w.
func (s *SVM) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	if s.Lambda <= 0 {
		return fmt.Errorf("%w: lambda must be positive, got %g", ErrBadTrainingSet, s.Lambda)
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 30
	}
	rng := rand.New(rand.NewSource(s.Seed))
	w := make([]float64, dim)
	bias := 0.0
	// Averaged Pegasos: the average of the second-half iterates converges
	// much faster than the noisy last iterate.
	avgW := make([]float64, dim)
	avgBias := 0.0
	avgCount := 0
	t := 0
	n := len(x)
	totalSteps := epochs * n
	for epoch := 0; epoch < epochs; epoch++ {
		for iter := 0; iter < n; iter++ {
			t++
			i := rng.Intn(n)
			// Offsetting the step count by 1/lambda caps the first steps at
			// eta <= 1, avoiding the huge early iterates of textbook
			// Pegasos that take many epochs to wash out.
			eta := 1 / (s.Lambda * (float64(t) + 1/s.Lambda))
			target := signLabel(y[i])
			margin := bias
			for j, v := range x[i] {
				margin += w[j] * v
			}
			margin *= target
			// Shrink step (the regularizer's gradient).
			scale := 1 - eta*s.Lambda
			if scale < 0 {
				scale = 0
			}
			for j := range w {
				w[j] *= scale
			}
			if margin < 1 {
				// Hinge-loss gradient step.
				for j, v := range x[i] {
					w[j] += eta * target * v
				}
				bias += eta * target
			}
			if t > totalSteps/2 {
				for j := range w {
					avgW[j] += w[j]
				}
				avgBias += bias
				avgCount++
			}
		}
	}
	if avgCount > 0 {
		for j := range avgW {
			avgW[j] /= float64(avgCount)
		}
		avgBias /= float64(avgCount)
		s.w = avgW
		s.bias = avgBias
	} else {
		s.w = w
		s.bias = bias
	}
	s.dim = dim
	return nil
}

// Score implements BinaryClassifier.
func (s *SVM) Score(x []float64) (float64, error) {
	if s.w == nil {
		return 0, ErrNotFitted
	}
	if len(x) != s.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), s.dim)
	}
	v := s.bias
	for j, xi := range x {
		v += s.w[j] * xi
	}
	return v, nil
}

// Predict implements BinaryClassifier.
func (s *SVM) Predict(x []float64) (bool, error) {
	v, err := s.Score(x)
	if err != nil {
		return false, err
	}
	return v > 0, nil
}
