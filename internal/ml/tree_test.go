package ml

import (
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
)

// threeClusters generates three labelled Gaussian clusters in 2D.
func threeClusters(rng *rand.Rand, perClass int, noise float64) ([][]float64, []string) {
	centers := map[string][2]float64{
		"a": {0, 0},
		"b": {5, 0},
		"c": {0, 5},
	}
	var x [][]float64
	var labels []string
	for label, c := range centers {
		for i := 0; i < perClass; i++ {
			x = append(x, []float64{c[0] + rng.NormFloat64()*noise, c[1] + rng.NormFloat64()*noise})
			labels = append(labels, label)
		}
	}
	return x, labels
}

func classAccuracy(t *testing.T, c MultiClassifier, x [][]float64, labels []string) float64 {
	t.Helper()
	correct := 0
	for i, row := range x {
		got, err := c.PredictClass(row)
		if err != nil {
			t.Fatalf("PredictClass: %v", err)
		}
		if got == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestDecisionTreeThreeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x, labels := threeClusters(rng, 100, 0.5)
	tree := NewDecisionTree()
	if err := tree.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if acc := classAccuracy(t, tree, x, labels); acc < 0.98 {
		t.Errorf("tree accuracy = %v, want >= 0.98", acc)
	}
}

func TestDecisionTreePureLeafShortCircuit(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	labels := []string{"same", "same", "same"}
	tree := NewDecisionTree()
	if err := tree.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if d := tree.Depth(); d != 0 {
		t.Errorf("pure data tree depth = %d, want 0", d)
	}
	got, err := tree.PredictClass([]float64{99})
	if err != nil || got != "same" {
		t.Errorf("PredictClass = %q, %v", got, err)
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, labels := threeClusters(rng, 60, 1.5)
	tree := &DecisionTree{MaxDepth: 2, MinLeaf: 1}
	if err := tree.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth = %d exceeds MaxDepth 2", d)
	}
}

func TestDecisionTreeConstantFeatures(t *testing.T) {
	// All feature values identical: no split is possible, so the tree must
	// fall back to a majority leaf instead of looping.
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels := []string{"a", "a", "b", "a"}
	tree := NewDecisionTree()
	if err := tree.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	got, err := tree.PredictClass([]float64{1, 1})
	if err != nil || got != "a" {
		t.Errorf("PredictClass = %q, %v; want majority label a", got, err)
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	tree := NewDecisionTree()
	if _, err := tree.PredictClass([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted err = %v", err)
	}
	if err := tree.FitClasses(nil, nil); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("empty err = %v", err)
	}
	if err := tree.FitClasses([][]float64{{1}}, []string{"a", "b"}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("mismatch err = %v", err)
	}
	if err := tree.FitClasses([][]float64{{1}, {1, 2}}, []string{"a", "b"}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("ragged err = %v", err)
	}
	if err := tree.FitClasses([][]float64{{1}, {2}}, []string{"a", "b"}); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if _, err := tree.PredictClass([]float64{1, 2}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim err = %v", err)
	}
}

func TestRandomForestThreeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x, labels := threeClusters(rng, 100, 0.8)
	rf := NewRandomForest()
	if err := rf.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if acc := classAccuracy(t, rf, x, labels); acc < 0.97 {
		t.Errorf("forest accuracy = %v, want >= 0.97", acc)
	}
	if got := rf.Labels(); len(got) != 3 || got[0] != "a" {
		t.Errorf("Labels = %v", got)
	}
}

func TestRandomForestVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x, labels := threeClusters(rng, 50, 0.3)
	rf := &RandomForest{Trees: 15, MaxDepth: 8, Seed: 7}
	if err := rf.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	votes, err := rf.Votes([]float64{0, 0})
	if err != nil {
		t.Fatalf("Votes: %v", err)
	}
	total := 0
	for _, v := range votes {
		total += v
	}
	if total != 15 {
		t.Errorf("votes sum = %d, want 15", total)
	}
	if votes["a"] < 12 {
		t.Errorf("cluster-a point got only %d/15 a-votes", votes["a"])
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	x, labels := threeClusters(rng, 40, 1.0)
	a := &RandomForest{Trees: 10, Seed: 5}
	b := &RandomForest{Trees: 10, Seed: 5}
	if err := a.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	if err := b.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		probe := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		pa, _ := a.PredictClass(probe)
		pb, _ := b.PredictClass(probe)
		if pa != pb {
			t.Fatalf("same seed forests disagree on %v: %q vs %q", probe, pa, pb)
		}
	}
}

func TestRandomForestErrors(t *testing.T) {
	rf := NewRandomForest()
	if _, err := rf.PredictClass([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted err = %v", err)
	}
	if err := rf.FitClasses(nil, nil); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("empty err = %v", err)
	}
}

func TestKRRSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	x, y := twoBlobs(rng, 60, 5, 2, 0.5)
	for _, mode := range []KRRMode{KRRModePrimal, KRRModeDual} {
		orig := &KRR{Rho: 0.3, Kernel: IdentityKernel{}, Mode: mode}
		if err := orig.Fit(x, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		blob, err := json.Marshal(orig)
		if err != nil {
			t.Fatalf("Marshal: %v", err)
		}
		var restored KRR
		if err := json.Unmarshal(blob, &restored); err != nil {
			t.Fatalf("Unmarshal: %v", err)
		}
		for trial := 0; trial < 10; trial++ {
			probe := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			so, _ := orig.Score(probe)
			sr, err := restored.Score(probe)
			if err != nil {
				t.Fatalf("restored Score: %v", err)
			}
			if so != sr {
				t.Fatalf("mode %v: restored score %v != original %v", mode, sr, so)
			}
		}
	}
}

func TestKRRSerializationRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	x, y := twoBlobs(rng, 40, 3, 1.5, 0.6)
	orig := &KRR{Rho: 0.2, Kernel: RBFKernel{Gamma: 2.5}, Mode: KRRModeDual}
	if err := orig.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var restored KRR
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	probe := []float64{0.5, -0.5, 1}
	so, _ := orig.Score(probe)
	sr, _ := restored.Score(probe)
	if so != sr {
		t.Errorf("restored RBF score %v != original %v", sr, so)
	}
}

func TestKRRUnmarshalRejectsCorrupt(t *testing.T) {
	var k KRR
	if err := json.Unmarshal([]byte(`{"kernel":"wavelet"}`), &k); err == nil {
		t.Errorf("unknown kernel should fail")
	}
	if err := json.Unmarshal([]byte(`{"primal":true,"dim":3,"w":[1]}`), &k); err == nil {
		t.Errorf("weight/dim mismatch should fail")
	}
	if err := json.Unmarshal([]byte(`{"primal":false,"dim":1,"alpha":[1,2],"support":[[1]]}`), &k); err == nil {
		t.Errorf("alpha/support mismatch should fail")
	}
	if err := json.Unmarshal([]byte(`not json`), &k); err == nil {
		t.Errorf("invalid json should fail")
	}
}

func TestForestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	x, labels := threeClusters(rng, 60, 0.8)
	orig := &RandomForest{Trees: 8, MaxDepth: 8, Seed: 3}
	if err := orig.FitClasses(x, labels); err != nil {
		t.Fatalf("FitClasses: %v", err)
	}
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var restored RandomForest
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for trial := 0; trial < 30; trial++ {
		probe := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		po, _ := orig.PredictClass(probe)
		pr, err := restored.PredictClass(probe)
		if err != nil {
			t.Fatalf("restored PredictClass: %v", err)
		}
		if po != pr {
			t.Fatalf("restored forest disagrees on %v: %q vs %q", probe, pr, po)
		}
	}
}

func TestTreeUnmarshalRejectsCycles(t *testing.T) {
	var tree DecisionTree
	// Node 0 points to itself as a child.
	corrupt := `{"dim":1,"labels":["a"],"nodes":[{"f":0,"t":0.5,"l":0,"r":0}]}`
	if err := json.Unmarshal([]byte(corrupt), &tree); err == nil {
		t.Errorf("self-referencing tree should fail to decode")
	}
	outOfRange := `{"dim":1,"labels":["a"],"nodes":[{"f":0,"t":0.5,"l":1,"r":99}]}`
	if err := json.Unmarshal([]byte(outOfRange), &tree); err == nil {
		t.Errorf("out-of-range child index should fail to decode")
	}
}
