package ml

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs generates a linearly separable two-class dataset: positives near
// +center, negatives near -center.
func twoBlobs(rng *rand.Rand, n, dim int, separation, noise float64) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		pos := i%2 == 0
		row := make([]float64, dim)
		sign := -1.0
		if pos {
			sign = 1.0
		}
		for j := range row {
			row[j] = sign*separation + rng.NormFloat64()*noise
		}
		x[i] = row
		y[i] = pos
	}
	return x, y
}

func accuracy(t *testing.T, c BinaryClassifier, x [][]float64, y []bool) float64 {
	t.Helper()
	correct := 0
	for i, row := range x {
		got, err := c.Predict(row)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if got == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestKRRSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := twoBlobs(rng, 200, 6, 2, 0.5)
	k := NewKRR(0.1)
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, k, x, y); acc < 0.99 {
		t.Errorf("training accuracy = %v, want >= 0.99 on separable data", acc)
	}
}

func TestKRRPrimalDualEquivalence(t *testing.T) {
	// The paper's Appendix proves Eq. 6 == Eq. 7; verify numerically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		dim := 2 + rng.Intn(6)
		x, y := twoBlobs(rng, n, dim, 1.5, 1.0)

		primal := &KRR{Rho: 0.5, Kernel: IdentityKernel{}, Mode: KRRModePrimal}
		dual := &KRR{Rho: 0.5, Kernel: IdentityKernel{}, Mode: KRRModeDual}
		if err := primal.Fit(x, y); err != nil {
			return false
		}
		if err := dual.Fit(x, y); err != nil {
			return false
		}
		probe := make([]float64, dim)
		for trial := 0; trial < 10; trial++ {
			for j := range probe {
				probe[j] = rng.NormFloat64() * 3
			}
			sp, err1 := primal.Score(probe)
			sd, err2 := dual.Score(probe)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(sp-sd) > 1e-6*(1+math.Abs(sp)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKRRAutoModeSelectsPrimalWhenCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, y := twoBlobs(rng, 100, 4, 2, 0.5) // N=100 > M=4 -> primal
	k := NewKRR(0.1)
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if !k.IsPrimal() {
		t.Errorf("auto mode should choose primal for N=100, M=4")
	}
	if w := k.Weights(); len(w) != 4 {
		t.Errorf("Weights length = %d, want 4", len(w))
	}

	x2, y2 := twoBlobs(rng, 6, 10, 2, 0.5) // N=6 < M=10 -> dual
	k2 := NewKRR(0.1)
	if err := k2.Fit(x2, y2); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if k2.IsPrimal() {
		t.Errorf("auto mode should choose dual for N=6, M=10")
	}
	if k2.Weights() != nil {
		t.Errorf("dual model should not expose primal weights")
	}
}

func TestKRRRBFKernel(t *testing.T) {
	// XOR-style data that a linear model cannot fit but RBF can.
	rng := rand.New(rand.NewSource(23))
	var x [][]float64
	var y []bool
	for i := 0; i < 200; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x = append(x, []float64{a, b})
		y = append(y, a*b > 0)
	}
	k := &KRR{Rho: 0.01, Kernel: RBFKernel{Gamma: 4}, Mode: KRRModeDual}
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if acc := accuracy(t, k, x, y); acc < 0.9 {
		t.Errorf("RBF KRR accuracy on XOR = %v, want >= 0.9", acc)
	}
	linear := NewKRR(0.01)
	if err := linear.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if accLin := accuracy(t, linear, x, y); accLin > 0.75 {
		t.Logf("linear KRR on XOR unexpectedly good: %v", accLin)
	}
}

func TestKRRErrors(t *testing.T) {
	k := NewKRR(0.1)
	if _, err := k.Score([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Score err = %v, want ErrNotFitted", err)
	}
	if _, err := k.Predict([]float64{1}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("unfitted Predict err = %v, want ErrNotFitted", err)
	}
	if err := k.Fit(nil, nil); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("empty Fit err = %v, want ErrBadTrainingSet", err)
	}
	if err := k.Fit([][]float64{{1}, {2}}, []bool{true}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("mismatched labels err = %v", err)
	}
	if err := k.Fit([][]float64{{1}, {2}}, []bool{true, true}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("single-class err = %v", err)
	}
	if err := k.Fit([][]float64{{1}, {2, 3}}, []bool{true, false}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("ragged features err = %v", err)
	}
	bad := NewKRR(0)
	if err := bad.Fit([][]float64{{1}, {2}}, []bool{true, false}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("rho=0 err = %v", err)
	}
	badMode := &KRR{Rho: 1, Kernel: RBFKernel{Gamma: 1}, Mode: KRRModePrimal}
	if err := badMode.Fit([][]float64{{1}, {2}}, []bool{true, false}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("primal+rbf err = %v", err)
	}
}

func TestKRRDimensionCheckAtScore(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x, y := twoBlobs(rng, 50, 3, 2, 0.5)
	k := NewKRR(0.1)
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if _, err := k.Score([]float64{1, 2}); !errors.Is(err, ErrBadTrainingSet) {
		t.Errorf("wrong-dim Score err = %v", err)
	}
}

func TestKRRConfidenceScoreMagnitude(t *testing.T) {
	// Points far on the positive side must score higher than marginal ones
	// — the property the Confidence Score retraining trigger relies on.
	rng := rand.New(rand.NewSource(25))
	x, y := twoBlobs(rng, 200, 4, 2, 0.5)
	k := NewKRR(0.1)
	if err := k.Fit(x, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	deep, err := k.Score([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	marginal, err := k.Score([]float64{0.1, 0.1, 0.1, 0.1})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if deep <= marginal {
		t.Errorf("deep positive score %v should exceed marginal score %v", deep, marginal)
	}
}
