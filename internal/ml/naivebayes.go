package ml

import (
	"fmt"
	"math"
)

// GaussianNB is a Gaussian naive Bayes classifier — the second weak
// baseline in Table VI. Each feature is modelled as an independent
// Gaussian per class; the decision value is the log-odds
// log P(pos|x) - log P(neg|x).
type GaussianNB struct {
	// VarSmoothing is added to every per-feature variance to keep
	// log-densities finite for near-constant features.
	VarSmoothing float64

	posMean, posVar []float64
	negMean, negVar []float64
	logPriorPos     float64
	logPriorNeg     float64
	dim             int
	fitted          bool
}

var _ BinaryClassifier = (*GaussianNB)(nil)

// NewGaussianNB returns a Gaussian naive Bayes classifier with standard
// variance smoothing.
func NewGaussianNB() *GaussianNB { return &GaussianNB{VarSmoothing: 1e-9} }

// Fit estimates per-class feature means, variances and priors.
func (g *GaussianNB) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	g.posMean = make([]float64, dim)
	g.posVar = make([]float64, dim)
	g.negMean = make([]float64, dim)
	g.negVar = make([]float64, dim)
	var nPos, nNeg float64
	for i, row := range x {
		if y[i] {
			nPos++
			for j, v := range row {
				g.posMean[j] += v
			}
		} else {
			nNeg++
			for j, v := range row {
				g.negMean[j] += v
			}
		}
	}
	for j := 0; j < dim; j++ {
		g.posMean[j] /= nPos
		g.negMean[j] /= nNeg
	}
	// Largest feature variance overall scales the smoothing floor, the
	// standard trick to make smoothing unit-independent.
	maxVar := 0.0
	for i, row := range x {
		for j, v := range row {
			var d float64
			if y[i] {
				d = v - g.posMean[j]
				g.posVar[j] += d * d
			} else {
				d = v - g.negMean[j]
				g.negVar[j] += d * d
			}
		}
	}
	for j := 0; j < dim; j++ {
		g.posVar[j] /= nPos
		g.negVar[j] /= nNeg
		if g.posVar[j] > maxVar {
			maxVar = g.posVar[j]
		}
		if g.negVar[j] > maxVar {
			maxVar = g.negVar[j]
		}
	}
	smoothing := g.VarSmoothing
	if smoothing <= 0 {
		smoothing = 1e-9
	}
	floor := smoothing * math.Max(maxVar, 1)
	for j := 0; j < dim; j++ {
		g.posVar[j] += floor
		g.negVar[j] += floor
	}
	total := nPos + nNeg
	g.logPriorPos = math.Log(nPos / total)
	g.logPriorNeg = math.Log(nNeg / total)
	g.dim = dim
	g.fitted = true
	return nil
}

// Score returns the log-odds of the positive class.
func (g *GaussianNB) Score(x []float64) (float64, error) {
	if !g.fitted {
		return 0, ErrNotFitted
	}
	if len(x) != g.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), g.dim)
	}
	pos := g.logPriorPos
	neg := g.logPriorNeg
	for j, v := range x {
		pos += logGauss(v, g.posMean[j], g.posVar[j])
		neg += logGauss(v, g.negMean[j], g.negVar[j])
	}
	return pos - neg, nil
}

// Predict implements BinaryClassifier.
func (g *GaussianNB) Predict(x []float64) (bool, error) {
	s, err := g.Score(x)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}

func logGauss(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}
