package ml

import (
	"fmt"

	"smarteryou/internal/linalg"
)

// IncrementalKRR is an identity-kernel KRR model that supports O(M^2)
// online updates: adding a new window and — the "machine unlearning" of
// Cao & Yang (S&P 2015) that Section V-I cites as the faster alternative
// to retraining from scratch — removing an old one.
//
// The primal solution w* = (S + rho*I)^{-1} X y (Eq. 7) depends on the
// data only through S = sum x_i x_i^T and b = sum y_i x_i. Both admit
// exact rank-1 updates, and the inverse of the ridge-shifted S is
// maintained directly with the Sherman-Morrison identity:
//
//	(A ± x x^T)^{-1} = A^{-1} ∓ (A^{-1} x)(x^T A^{-1}) / (1 ± x^T A^{-1} x)
//
// so both AddSample and RemoveSample cost O(M^2) instead of the O(M^3)
// of a fresh solve — and crucially, removal needs no access to the other
// training samples.
type IncrementalKRR struct {
	rho float64
	dim int
	n   int
	inv *linalg.Matrix // (S + rho*I)^{-1}
	b   []float64      // X y
	w   []float64      // current weights, inv * b
}

var _ BinaryClassifier = (*IncrementalKRR)(nil)

// NewIncrementalKRR returns an empty model for dim-dimensional features.
// With no data, S = 0 and the inverse is (1/rho) I.
func NewIncrementalKRR(rho float64, dim int) (*IncrementalKRR, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("%w: rho must be positive, got %g", ErrBadTrainingSet, rho)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dimension must be positive, got %d", ErrBadTrainingSet, dim)
	}
	k := &IncrementalKRR{
		rho: rho,
		dim: dim,
		inv: linalg.Identity(dim).Scale(1 / rho),
		b:   make([]float64, dim),
		w:   make([]float64, dim),
	}
	return k, nil
}

// Fit implements BinaryClassifier by resetting the model and adding every
// sample; the result is numerically equivalent to the batch primal solve.
func (k *IncrementalKRR) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	if dim != k.dim {
		return fmt.Errorf("%w: feature dimension %d, model expects %d", ErrBadTrainingSet, dim, k.dim)
	}
	fresh, err := NewIncrementalKRR(k.rho, k.dim)
	if err != nil {
		return err
	}
	*k = *fresh
	for i, row := range x {
		if err := k.AddSample(row, y[i]); err != nil {
			return err
		}
	}
	return nil
}

// AddSample folds one labelled window into the model.
func (k *IncrementalKRR) AddSample(x []float64, label bool) error {
	if len(x) != k.dim {
		return fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	if err := k.rankOneUpdate(x, +1); err != nil {
		return err
	}
	target := signLabel(label)
	for j, v := range x {
		k.b[j] += target * v
	}
	k.n++
	k.refreshWeights()
	return nil
}

// RemoveSample unlearns one previously added window. The caller must pass
// the same vector and label that were added; the model cannot verify
// membership, only numerical feasibility.
func (k *IncrementalKRR) RemoveSample(x []float64, label bool) error {
	if len(x) != k.dim {
		return fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	if k.n == 0 {
		return fmt.Errorf("%w: cannot remove from an empty model", ErrBadTrainingSet)
	}
	if err := k.rankOneUpdate(x, -1); err != nil {
		return err
	}
	target := signLabel(label)
	for j, v := range x {
		k.b[j] -= target * v
	}
	k.n--
	k.refreshWeights()
	return nil
}

// rankOneUpdate applies Sherman-Morrison for S <- S + sign * x x^T.
func (k *IncrementalKRR) rankOneUpdate(x []float64, sign float64) error {
	// u = A^{-1} x.
	u, err := k.inv.MulVec(x)
	if err != nil {
		return err
	}
	xu, err := linalg.Dot(x, u)
	if err != nil {
		return err
	}
	denom := 1 + sign*xu
	if denom <= 1e-12 {
		// Removing a vector that was never added (or numerical collapse):
		// the downdate would make the matrix indefinite.
		return fmt.Errorf("%w: rank-one downdate is infeasible (denominator %g)", ErrBadTrainingSet, denom)
	}
	scale := sign / denom
	for i := 0; i < k.dim; i++ {
		for j := 0; j < k.dim; j++ {
			k.inv.Set(i, j, k.inv.At(i, j)-scale*u[i]*u[j])
		}
	}
	return nil
}

// refreshWeights recomputes w = (S + rho I)^{-1} b in O(M^2).
func (k *IncrementalKRR) refreshWeights() {
	w, err := k.inv.MulVec(k.b)
	if err != nil {
		return // cannot happen: shapes are fixed at construction
	}
	k.w = w
}

// Score implements BinaryClassifier.
func (k *IncrementalKRR) Score(x []float64) (float64, error) {
	if k.n == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	return linalg.Dot(k.w, x)
}

// Predict implements BinaryClassifier.
func (k *IncrementalKRR) Predict(x []float64) (bool, error) {
	s, err := k.Score(x)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}

// N returns the number of samples currently in the model.
func (k *IncrementalKRR) N() int { return k.n }

// Weights returns a copy of the current primal weight vector.
func (k *IncrementalKRR) Weights() []float64 {
	return append([]float64(nil), k.w...)
}
