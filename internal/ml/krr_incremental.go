package ml

import (
	"fmt"

	"smarteryou/internal/linalg"
)

// IncrementalKRR is an identity-kernel KRR model that supports O(M^2)
// online updates: adding a new window and — the "machine unlearning" of
// Cao & Yang (S&P 2015) that Section V-I cites as the faster alternative
// to retraining from scratch — removing an old one.
//
// The primal solution w* = (S + rho*I)^{-1} X y (Eq. 7) depends on the
// data only through S = sum x_i x_i^T and b = sum y_i x_i. Both admit
// exact rank-1 updates, and the inverse of the ridge-shifted S is
// maintained directly with the Sherman-Morrison identity:
//
//	(A ± x x^T)^{-1} = A^{-1} ∓ (A^{-1} x)(x^T A^{-1}) / (1 ± x^T A^{-1} x)
//
// so both AddSample and RemoveSample cost O(M^2) instead of the O(M^3)
// of a fresh solve — and crucially, removal needs no access to the other
// training samples.
type IncrementalKRR struct {
	rho float64
	dim int
	n   int
	inv *linalg.Matrix // (S + rho*I)^{-1}
	b   []float64      // X y
	w   []float64      // current weights, inv * b (valid iff !wStale)
	u   []float64      // scratch for the Sherman-Morrison vector A^{-1} x
	// wStale defers the O(M^2) weight solve until a weight-consuming call
	// (Score/Predict/Weights): a refresh that streams hundreds of
	// AddSamples before its first Score pays for one solve, not one per
	// sample — a third of the per-sample flops.
	wStale bool
}

var _ BinaryClassifier = (*IncrementalKRR)(nil)

// NewIncrementalKRR returns an empty model for dim-dimensional features.
// With no data, S = 0 and the inverse is (1/rho) I.
func NewIncrementalKRR(rho float64, dim int) (*IncrementalKRR, error) {
	if rho <= 0 {
		return nil, fmt.Errorf("%w: rho must be positive, got %g", ErrBadTrainingSet, rho)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("%w: dimension must be positive, got %d", ErrBadTrainingSet, dim)
	}
	k := &IncrementalKRR{
		rho: rho,
		dim: dim,
		inv: linalg.Identity(dim).Scale(1 / rho),
		b:   make([]float64, dim),
		w:   make([]float64, dim),
		u:   make([]float64, dim),
	}
	return k, nil
}

// Fit implements BinaryClassifier by resetting the model and adding every
// sample; the result is numerically equivalent to the batch primal solve.
func (k *IncrementalKRR) Fit(x [][]float64, y []bool) error {
	dim, err := checkTrainingSet(x, y)
	if err != nil {
		return err
	}
	if dim != k.dim {
		return fmt.Errorf("%w: feature dimension %d, model expects %d", ErrBadTrainingSet, dim, k.dim)
	}
	fresh, err := NewIncrementalKRR(k.rho, k.dim)
	if err != nil {
		return err
	}
	*k = *fresh
	for i, row := range x {
		if err := k.AddSample(row, y[i]); err != nil {
			return err
		}
	}
	return nil
}

// AddSample folds one labelled window into the model.
func (k *IncrementalKRR) AddSample(x []float64, label bool) error {
	if len(x) != k.dim {
		return fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	if err := k.rankOneUpdate(x, +1); err != nil {
		return err
	}
	target := signLabel(label)
	for j, v := range x {
		k.b[j] += target * v
	}
	k.n++
	k.wStale = true
	return nil
}

// RemoveSample unlearns one previously added window. The caller must pass
// the same vector and label that were added; the model cannot verify
// membership, only numerical feasibility.
func (k *IncrementalKRR) RemoveSample(x []float64, label bool) error {
	if len(x) != k.dim {
		return fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	if k.n == 0 {
		return fmt.Errorf("%w: cannot remove from an empty model", ErrBadTrainingSet)
	}
	if err := k.rankOneUpdate(x, -1); err != nil {
		return err
	}
	target := signLabel(label)
	for j, v := range x {
		k.b[j] -= target * v
	}
	k.n--
	k.wStale = true
	return nil
}

// rankOneUpdate applies Sherman-Morrison for S <- S + sign * x x^T.
func (k *IncrementalKRR) rankOneUpdate(x []float64, sign float64) error {
	// u = A^{-1} x, into the reusable scratch vector.
	if err := k.inv.MulVecInto(k.u, x); err != nil {
		return err
	}
	xu, err := linalg.Dot(x, k.u)
	if err != nil {
		return err
	}
	denom := 1 + sign*xu
	if denom <= 1e-12 {
		// Removing a vector that was never added (or numerical collapse):
		// the downdate would make the matrix indefinite.
		return fmt.Errorf("%w: rank-one downdate is infeasible (denominator %g)", ErrBadTrainingSet, denom)
	}
	return k.inv.SubOuterScaled(k.u, sign/denom)
}

// refreshWeights recomputes w = (S + rho I)^{-1} b in O(M^2) if any
// update landed since the last weight-consuming call.
func (k *IncrementalKRR) refreshWeights() {
	if !k.wStale {
		return
	}
	if err := k.inv.MulVecInto(k.w, k.b); err != nil {
		return // cannot happen: shapes are fixed at construction
	}
	k.wStale = false
}

// Score implements BinaryClassifier.
func (k *IncrementalKRR) Score(x []float64) (float64, error) {
	if k.n == 0 {
		return 0, ErrNotFitted
	}
	if len(x) != k.dim {
		return 0, fmt.Errorf("%w: feature length %d, model expects %d", ErrBadTrainingSet, len(x), k.dim)
	}
	k.refreshWeights()
	return linalg.Dot(k.w, x)
}

// Predict implements BinaryClassifier.
func (k *IncrementalKRR) Predict(x []float64) (bool, error) {
	s, err := k.Score(x)
	if err != nil {
		return false, err
	}
	return s > 0, nil
}

// N returns the number of samples currently in the model.
func (k *IncrementalKRR) N() int { return k.n }

// Weights returns a copy of the current primal weight vector.
func (k *IncrementalKRR) Weights() []float64 {
	k.refreshWeights()
	return append([]float64(nil), k.w...)
}
