package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestIncrementalKRRLongRunStability(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const dim = 28
	const window = 400
	inc, err := NewIncrementalKRR(1, dim)
	if err != nil {
		t.Fatal(err)
	}
	queue := make([][]float64, 0, window)
	labels := make([]bool, 0, window)
	gen := func(i int) ([]float64, bool) {
		pos := i%2 == 0
		base := -1.0
		if pos {
			base = 1.0
		}
		x := make([]float64, dim)
		for j := range x {
			x[j] = base + rng.NormFloat64()
		}
		return x, pos
	}
	for i := 0; i < 5000; i++ {
		x, lab := gen(i)
		if err := inc.AddSample(x, lab); err != nil {
			t.Fatal(err)
		}
		queue = append(queue, x)
		labels = append(labels, lab)
		if len(queue) > window {
			if err := inc.RemoveSample(queue[0], labels[0]); err != nil {
				t.Fatal(err)
			}
			queue = queue[1:]
			labels = labels[1:]
		}
	}
	batch := &KRR{Rho: 1, Kernel: IdentityKernel{}, Mode: KRRModePrimal}
	if err := batch.Fit(queue, labels); err != nil {
		t.Fatal(err)
	}
	wi, wb := inc.Weights(), batch.Weights()
	var maxDiff float64
	for j := range wi {
		if d := math.Abs(wi[j] - wb[j]); d > maxDiff {
			maxDiff = d
		}
	}
	t.Logf("max weight drift after 5000 sliding updates: %.3e", maxDiff)
	if maxDiff > 1e-6 {
		t.Errorf("Sherman-Morrison drift too large: %v", maxDiff)
	}
}
