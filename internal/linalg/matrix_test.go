package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got shape %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	_, err := NewMatrixFromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ragged rows: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	if _, err := NewMatrixFromRows(nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("empty rows: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestIdentityMul(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := m.Mul(Identity(3))
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(m, 0) {
		t.Errorf("m*I != m:\n%v", got)
	}
}

func TestMulShapes(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6, 7}, {8, 9, 10}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := NewMatrixFromRows([][]float64{{21, 24, 27}, {47, 54, 61}})
	if !c.Equal(want, 1e-12) {
		t.Errorf("product:\n%v\nwant:\n%v", c, want)
	}
	if _, err := b.Mul(a); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("incompatible Mul err = %v, want ErrDimensionMismatch", err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows() != 3 || tt.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tt.Rows(), tt.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddSubScaleDiagonal(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{10, 20}, {30, 40}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if sum.At(1, 1) != 44 {
		t.Errorf("Add At(1,1) = %v, want 44", sum.At(1, 1))
	}
	diff, err := b.Sub(a)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub At(0,0) = %v, want 9", diff.At(0, 0))
	}
	if s := a.Scale(2); s.At(1, 0) != 6 {
		t.Errorf("Scale At(1,0) = %v, want 6", s.At(1, 0))
	}
	d, err := a.AddDiagonal(5)
	if err != nil {
		t.Fatalf("AddDiagonal: %v", err)
	}
	if d.At(0, 0) != 6 || d.At(1, 1) != 9 || d.At(0, 1) != 2 {
		t.Errorf("AddDiagonal produced wrong values: %v", d)
	}
	nonsquare, _ := NewMatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := nonsquare.AddDiagonal(1); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AddDiagonal nonsquare err = %v, want ErrDimensionMismatch", err)
	}
}

func TestMulVec(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v, err := m.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != 6 || v[1] != 15 {
		t.Errorf("MulVec = %v, want [6 15]", v)
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("MulVec short vector err = %v, want ErrDimensionMismatch", err)
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatrix(6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	gram := m.Gram()
	explicit, err := m.T().Mul(m)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !gram.Equal(explicit, 1e-12) {
		t.Errorf("Gram != T()*m")
	}
	outer := m.OuterGram()
	explicitOuter, err := m.Mul(m.T())
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !outer.Equal(explicitOuter, 1e-12) {
		t.Errorf("OuterGram != m*T()")
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99 // must not alias
	if m.At(1, 0) != 3 {
		t.Errorf("Row aliases the matrix")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col = %v, want [2 4]", c)
	}
	cl := m.Clone()
	cl.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Errorf("Clone aliases the matrix")
	}
}

// Property: (A^T)^T == A for random matrices.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.data {
			m.data[i] = rng.NormFloat64()
		}
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication is associative: (AB)C == A(BC).
func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2, n3, n4 := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		randM := func(r, c int) *Matrix {
			m := NewMatrix(r, c)
			for i := range m.data {
				m.data[i] = rng.NormFloat64()
			}
			return m
		}
		a, b, c := randM(n1, n2), randM(n2, n3), randM(n3, n4)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxAbs(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, -7}, {3, 4}})
	if got := m.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestStringRenders(t *testing.T) {
	m := Identity(2)
	if s := m.String(); len(s) == 0 || math.IsNaN(float64(len(s))) {
		t.Errorf("String returned empty output")
	}
}
