package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive-definite matrix A = B^T B + I.
func randSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.data {
		b.data[i] = rng.NormFloat64()
	}
	spd := b.Gram()
	shifted, err := spd.AddDiagonal(1)
	if err != nil {
		panic(err)
	}
	return shifted
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 12; n++ {
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d Cholesky: %v", n, err)
		}
		recon, err := l.Mul(l.T())
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		if !recon.Equal(a, 1e-9) {
			t.Errorf("n=%d: L*L^T does not reconstruct A", n)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("indefinite matrix: err = %v, want ErrSingular", err)
	}
}

func TestCholeskyRejectsNonSquare(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2, 3}})
	if _, err := Cholesky(a); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("non-square: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSPD(rng, 8)
	want := make([]float64, 8)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	got, err := SolveSPD(a, b)
	if err != nil {
		t.Fatalf("SolveSPD: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("solution[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveGeneral(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{
		{0, 2, 1}, // zero pivot forces a row swap
		{1, 1, 1},
		{2, 0, 3},
	})
	want := []float64{1, -2, 3}
	b, _ := a.MulVec(want)
	got, err := Solve(a, b)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("solution[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular: err = %v, want ErrSingular", err)
	}
}

func TestSolveRHSLength(t *testing.T) {
	a := Identity(3)
	if _, err := Solve(a, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short rhs: err = %v, want ErrDimensionMismatch", err)
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randSPD(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod, err := a.Mul(inv)
		if err != nil {
			return false
		}
		return prod.Equal(Identity(n), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDet(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{2, 0}, {0, 3}})
	d, err := Det(a)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if math.Abs(d-6) > 1e-12 {
		t.Errorf("Det = %v, want 6", d)
	}
	// A row swap flips the sign bookkeeping but not the determinant value.
	b, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	d, err = Det(b)
	if err != nil {
		t.Fatalf("Det: %v", err)
	}
	if math.Abs(d+1) > 1e-12 {
		t.Errorf("Det of permutation = %v, want -1", d)
	}
}

// Property: for SPD systems, SolveSPD and the general Solve agree.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := SolveSPD(a, b)
		x2, err2 := Solve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	d, err := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if err != nil || d != 32 {
		t.Errorf("Dot = %v, %v; want 32, nil", d, err)
	}
	if _, err := Dot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("Dot mismatched err = %v", err)
	}
	if n := Norm2([]float64{3, 4}); n != 5 {
		t.Errorf("Norm2 = %v, want 5", n)
	}
	y := []float64{1, 1}
	if err := AXPY(2, []float64{1, 2}, y); err != nil || y[1] != 5 {
		t.Errorf("AXPY = %v (err %v), want [3 5]", y, err)
	}
	if err := AXPY(1, []float64{1}, y); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("AXPY mismatched err = %v", err)
	}
	v := []float64{2, 4}
	ScaleVec(0.5, v)
	if v[0] != 1 || v[1] != 2 {
		t.Errorf("ScaleVec = %v, want [1 2]", v)
	}
	s, err := SubVec([]float64{5, 5}, []float64{2, 3})
	if err != nil || s[0] != 3 || s[1] != 2 {
		t.Errorf("SubVec = %v (err %v)", s, err)
	}
	sq, err := SquaredDistance([]float64{0, 0}, []float64{3, 4})
	if err != nil || sq != 25 {
		t.Errorf("SquaredDistance = %v (err %v), want 25", sq, err)
	}
	if _, err := SquaredDistance([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("SquaredDistance mismatched err = %v", err)
	}
}
