// Package linalg provides the dense linear-algebra substrate used by the
// machine-learning algorithms in this repository: column-major-free dense
// matrices, vector helpers, and the decompositions (Cholesky, LU) needed to
// solve the regularized least-squares systems at the heart of kernel ridge
// regression (Eq. 6 and Eq. 7 of the SmarterYou paper).
//
// Everything is implemented from scratch on float64 slices; there are no
// external dependencies. Matrices are small in this system (the
// authentication feature space is M=28 dimensional, training sets are a few
// hundred windows), so the implementations favour clarity and numerical
// robustness over blocking or SIMD.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("linalg: dimension mismatch")

// ErrSingular is returned when a factorization encounters a singular (or
// numerically indefinite) matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-valued rows x cols matrix.
// It panics if either dimension is non-positive: matrix shapes in this
// codebase are programmer-controlled, never user input.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows,
// copying the data.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty row set", ErrDimensionMismatch)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrDimensionMismatch, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: add %dx%d with %dx%d", ErrDimensionMismatch, m.rows, m.cols, other.rows, other.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += other.data[i]
	}
	return out, nil
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("%w: sub %dx%d with %dx%d", ErrDimensionMismatch, m.rows, m.cols, other.rows, other.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= other.data[i]
	}
	return out, nil
}

// Scale returns s * m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// AddDiagonal returns m + s*I for square m. This is the ridge shift
// (K + rho*I) used throughout kernel ridge regression.
func (m *Matrix) AddDiagonal(s float64) (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: AddDiagonal on %dx%d matrix", ErrDimensionMismatch, m.rows, m.cols)
	}
	out := m.Clone()
	for i := 0; i < m.rows; i++ {
		out.data[i*m.cols+i] += s
	}
	return out, nil
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("%w: mul %dx%d with %dx%d", ErrDimensionMismatch, m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	// ikj loop order keeps the inner loop walking both operands
	// sequentially, which matters for the N x N kernel matrices.
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			orow := other.data[k*other.cols:]
			crow := out.data[i*out.cols:]
			for j := 0; j < other.cols; j++ {
				crow[j] += a * orow[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: mulvec %dx%d with vector of length %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// MulVecInto computes m * v into dst, which must have length m.Rows().
// This is the allocation-free form of MulVec for hot paths that reuse a
// buffer (the Sherman-Morrison update applies it twice per sample).
// dst must not alias v.
func (m *Matrix) MulVecInto(dst, v []float64) error {
	if m.cols != len(v) {
		return fmt.Errorf("%w: mulvec %dx%d with vector of length %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	if len(dst) != m.rows {
		return fmt.Errorf("%w: mulvec destination length %d, want %d", ErrDimensionMismatch, len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, a := range row {
			s += a * v[j]
		}
		dst[i] = s
	}
	return nil
}

// SubOuterScaled applies m -= scale * u * u^T in place for square m; the
// fused symmetric rank-1 downdate at the heart of Sherman-Morrison. It
// walks the backing array directly instead of going through At/Set, which
// is what keeps the O(M^2) incremental-KRR update cheap in practice.
func (m *Matrix) SubOuterScaled(u []float64, scale float64) error {
	if m.rows != m.cols {
		return fmt.Errorf("%w: SubOuterScaled on %dx%d matrix", ErrDimensionMismatch, m.rows, m.cols)
	}
	if len(u) != m.rows {
		return fmt.Errorf("%w: SubOuterScaled vector length %d, want %d", ErrDimensionMismatch, len(u), m.rows)
	}
	for i, ui := range u {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := scale * ui
		for j, uj := range u {
			row[j] -= s * uj
		}
	}
	return nil
}

// Gram returns m^T * m (the Gram matrix of the columns of m), exploiting
// symmetry to halve the work.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.cols, m.cols)
	for i := 0; i < m.cols; i++ {
		for j := i; j < m.cols; j++ {
			s := 0.0
			for k := 0; k < m.rows; k++ {
				s += m.data[k*m.cols+i] * m.data[k*m.cols+j]
			}
			out.data[i*out.cols+j] = s
			out.data[j*out.cols+i] = s
		}
	}
	return out
}

// OuterGram returns m * m^T (the Gram matrix of the rows of m).
func (m *Matrix) OuterGram() *Matrix {
	out := NewMatrix(m.rows, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j := i; j < m.rows; j++ {
			rj := m.data[j*m.cols : (j+1)*m.cols]
			s := 0.0
			for k := range ri {
				s += ri[k] * rj[k]
			}
			out.data[i*out.cols+j] = s
			out.data[j*out.cols+i] = s
		}
	}
	return out
}

// MaxAbs returns the largest absolute value in the matrix.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
