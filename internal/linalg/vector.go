package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: dot of lengths %d and %d", ErrDimensionMismatch, len(a), len(b))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("%w: axpy of lengths %d and %d", ErrDimensionMismatch, len(x), len(y))
	}
	for i := range x {
		y[i] += a * x[i]
	}
	return nil
}

// ScaleVec multiplies v by a in place.
func ScaleVec(a float64, v []float64) {
	for i := range v {
		v[i] *= a
	}
}

// SubVec returns a - b as a new vector.
func SubVec(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: sub of lengths %d and %d", ErrDimensionMismatch, len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// SquaredDistance returns ||a-b||^2, the workhorse of the RBF kernel and
// k-NN distance computations.
func SquaredDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: distance of lengths %d and %d", ErrDimensionMismatch, len(a), len(b))
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s, nil
}
