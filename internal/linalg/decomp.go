package linalg

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L of a symmetric
// positive-definite matrix a, such that a = L * L^T. It returns ErrSingular
// if the matrix is not positive definite (within numerical tolerance).
//
// The ridge-shifted Gram matrices solved in kernel ridge regression
// (K + rho*I and S + rho*I) are symmetric positive definite by construction
// for rho > 0, so Cholesky is the natural and cheapest solver for them.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d matrix", ErrDimensionMismatch, a.rows, a.cols)
	}
	n := a.rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: non-positive pivot %g at row %d", ErrSingular, s, i)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a*x = b given the Cholesky factor l of a, via
// forward then backward substitution.
func CholeskySolve(l *Matrix, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve with factor %dx%d and rhs length %d", ErrDimensionMismatch, n, n, len(b))
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves a*x = b for symmetric positive-definite a.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b)
}

// luFactor holds an LU factorization with partial pivoting: P*A = L*U
// packed into a single matrix (unit lower triangle implicit).
type luFactor struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// lu computes the LU factorization of a square matrix with partial
// pivoting (Doolittle with row swaps).
func lu(a *Matrix) (*luFactor, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrDimensionMismatch, a.rows, a.cols)
	}
	n := a.rows
	f := &luFactor{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	m := f.lu
	for k := 0; k < n; k++ {
		// Pivot: largest absolute value in column k at or below the diagonal.
		p, max := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(m.At(i, k)); a > max {
				p, max = i, a
			}
		}
		if max < 1e-14 {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, max, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				m.data[k*n+j], m.data[p*n+j] = m.data[p*n+j], m.data[k*n+j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		inv := 1 / m.At(k, k)
		for i := k + 1; i < n; i++ {
			lik := m.At(i, k) * inv
			m.Set(i, k, lik)
			if lik == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				m.Set(i, j, m.At(i, j)-lik*m.At(k, j))
			}
		}
	}
	return f, nil
}

func (f *luFactor) solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: LU solve with rhs length %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with implicit unit diagonal.
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu.At(i, k) * x[k]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x, nil
}

// Solve solves the general linear system a*x = b via LU with partial
// pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := lu(a)
	if err != nil {
		return nil, err
	}
	return f.solve(b)
}

// Inverse returns a^{-1} via LU factorization, solving against each column
// of the identity. Used by the experiment harness to realize Eq. 6 / Eq. 7
// of the paper literally; the classifiers themselves prefer Solve/SolveSPD.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := lu(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of a square matrix via LU.
func Det(a *Matrix) (float64, error) {
	f, err := lu(a)
	if err != nil {
		return 0, err
	}
	d := f.sign
	for i := 0; i < a.rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d, nil
}
