package dsp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMagnitude(t *testing.T) {
	if got := Magnitude(3, 4, 0); got != 5 {
		t.Errorf("Magnitude(3,4,0) = %v, want 5", got)
	}
	if got := Magnitude(1, 2, 2); got != 3 {
		t.Errorf("Magnitude(1,2,2) = %v, want 3", got)
	}
}

func TestMagnitudeSeries(t *testing.T) {
	m, err := MagnitudeSeries([]float64{3, 0}, []float64{4, 0}, []float64{0, 2})
	if err != nil {
		t.Fatalf("MagnitudeSeries: %v", err)
	}
	if m[0] != 5 || m[1] != 2 {
		t.Errorf("MagnitudeSeries = %v, want [5 2]", m)
	}
	if _, err := MagnitudeSeries([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Errorf("mismatched axes should error")
	}
}

func TestWindows(t *testing.T) {
	stream := []float64{1, 2, 3, 4, 5, 6, 7}
	w, err := Windows(stream, 3)
	if err != nil {
		t.Fatalf("Windows: %v", err)
	}
	if len(w) != 2 {
		t.Fatalf("got %d windows, want 2 (trailing partial dropped)", len(w))
	}
	if w[1][0] != 4 {
		t.Errorf("second window starts at %v, want 4", w[1][0])
	}
	if _, err := Windows(stream, 0); err == nil {
		t.Errorf("zero window size should error")
	}
}

func TestSlidingWindows(t *testing.T) {
	stream := []float64{1, 2, 3, 4, 5}
	w, err := SlidingWindows(stream, 3, 1)
	if err != nil {
		t.Fatalf("SlidingWindows: %v", err)
	}
	if len(w) != 3 {
		t.Fatalf("got %d windows, want 3", len(w))
	}
	if w[2][2] != 5 {
		t.Errorf("last window ends at %v, want 5", w[2][2])
	}
	if _, err := SlidingWindows(stream, 3, 0); err == nil {
		t.Errorf("zero step should error")
	}
	none, err := SlidingWindows([]float64{1}, 3, 1)
	if err != nil || len(none) != 0 {
		t.Errorf("short stream: got %d windows (err %v), want 0", len(none), err)
	}
}

func TestStats(t *testing.T) {
	s, err := Stats([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if s.Mean != 2.5 {
		t.Errorf("Mean = %v, want 2.5", s.Mean)
	}
	if math.Abs(s.Var-1.25) > 1e-12 {
		t.Errorf("Var = %v, want 1.25", s.Var)
	}
	if s.Max != 4 || s.Min != 1 || s.Ran != 3 {
		t.Errorf("Max/Min/Ran = %v/%v/%v, want 4/1/3", s.Max, s.Min, s.Ran)
	}
	if _, err := Stats(nil); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("Stats(nil) err = %v, want ErrEmptyInput", err)
	}
}

// Property: Min <= Mean <= Max and Var >= 0 and Ran == Max-Min.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := make([]float64, 1+rng.Intn(200))
		for i := range w {
			w[i] = rng.NormFloat64() * 10
		}
		s, err := Stats(w)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-12 && s.Mean <= s.Max+1e-12 &&
			s.Var >= 0 && math.Abs(s.Ran-(s.Max-s.Min)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: windows partition the prefix of the stream exactly.
func TestWindowsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]float64, rng.Intn(300))
		for i := range stream {
			stream[i] = rng.Float64()
		}
		size := 1 + rng.Intn(20)
		ws, err := Windows(stream, size)
		if err != nil {
			return false
		}
		if len(ws) != len(stream)/size {
			return false
		}
		idx := 0
		for _, w := range ws {
			if len(w) != size {
				return false
			}
			for _, v := range w {
				if v != stream[idx] {
					return false
				}
				idx++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestDetrend(t *testing.T) {
	d := Detrend([]float64{1, 2, 3})
	sum := d[0] + d[1] + d[2]
	if math.Abs(sum) > 1e-12 {
		t.Errorf("detrended sum = %v, want 0", sum)
	}
	if Detrend(nil) != nil {
		t.Errorf("Detrend(nil) should be nil")
	}
}
