package dsp

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTEmpty(t *testing.T) {
	if _, err := FFT(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("FFT(nil) err = %v, want ErrEmptyInput", err)
	}
	if _, err := IFFT(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("IFFT(nil) err = %v, want ErrEmptyInput", err)
	}
	if _, err := FFTReal(nil); !errors.Is(err, ErrEmptyInput) {
		t.Fatalf("FFTReal(nil) err = %v, want ErrEmptyInput", err)
	}
}

func TestFFTImpulse(t *testing.T) {
	// The transform of a unit impulse is flat ones.
	x := make([]complex128, 8)
	x[0] = 1
	got, err := FFT(x)
	if err != nil {
		t.Fatalf("FFT: %v", err)
	}
	for k, v := range got {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTKnownSinusoid(t *testing.T) {
	// A pure cosine at bin 3 of a 16-sample window puts N/2 in bins 3 and 13.
	n := 16
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	spec, err := FFTReal(x)
	if err != nil {
		t.Fatalf("FFTReal: %v", err)
	}
	for k, v := range spec {
		want := 0.0
		if k == 3 || k == 13 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d amplitude = %v, want %v", k, cmplx.Abs(v), want)
		}
	}
}

func TestFFTNonPowerOfTwoMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 5, 6, 7, 12, 50, 300} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("n=%d FFT: %v", n, err)
		}
		want := naiveDFT(x)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8 {
				t.Fatalf("n=%d bin %d: got %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

// Property: IFFT(FFT(x)) == x for arbitrary lengths, including non-powers
// of two exercised by the paper's 50 Hz windows.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(130)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		back, err := IFFT(spec)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: linearity, FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		a := complex(rng.NormFloat64(), 0)
		b := complex(rng.NormFloat64(), 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		mix := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			mix[i] = a*x[i] + b*y[i]
		}
		fx, err1 := FFT(x)
		fy, err2 := FFT(y)
		fmix, err3 := FFT(mix)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for k := range fmix {
			if cmplx.Abs(fmix[k]-(a*fx[k]+b*fy[k])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Parseval's theorem, sum|x|^2 == (1/N) sum|X|^2.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]complex128, n)
		timeE := 0.0
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		spec, err := FFT(x)
		if err != nil {
			return false
		}
		freqE := 0.0
		for _, v := range spec {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) <= 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAmplitudeSpectrum(t *testing.T) {
	// 2 Hz cosine with amplitude 3, sampled at 50 Hz over 100 samples
	// (2 s window) lands exactly on bin 4.
	const rate = 50.0
	n := 100
	x := make([]float64, n)
	for i := range x {
		x[i] = 3 * math.Cos(2*math.Pi*2*float64(i)/rate)
	}
	spec, err := AmplitudeSpectrum(x, rate)
	if err != nil {
		t.Fatalf("AmplitudeSpectrum: %v", err)
	}
	peaks := spec.Peaks()
	if math.Abs(peaks.PeakF-2) > 1e-9 {
		t.Errorf("PeakF = %v, want 2 Hz", peaks.PeakF)
	}
	if math.Abs(peaks.Peak-3) > 1e-9 {
		t.Errorf("Peak = %v, want 3", peaks.Peak)
	}
}

func TestAmplitudeSpectrumErrors(t *testing.T) {
	if _, err := AmplitudeSpectrum(nil, 50); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("empty err = %v, want ErrEmptyInput", err)
	}
	if _, err := AmplitudeSpectrum([]float64{1}, 0); err == nil {
		t.Errorf("zero sample rate should error")
	}
}

func TestPeaksTwoComponents(t *testing.T) {
	const rate = 50.0
	n := 200
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) / rate
		x[i] = 5*math.Sin(2*math.Pi*3*ts) + 2*math.Sin(2*math.Pi*8*ts)
	}
	spec, err := AmplitudeSpectrum(x, rate)
	if err != nil {
		t.Fatalf("AmplitudeSpectrum: %v", err)
	}
	p := spec.Peaks()
	if math.Abs(p.PeakF-3) > 0.3 {
		t.Errorf("PeakF = %v, want ~3", p.PeakF)
	}
	if math.Abs(p.Peak2F-8) > 0.3 {
		t.Errorf("Peak2F = %v, want ~8", p.Peak2F)
	}
	if p.Peak < p.Peak2 {
		t.Errorf("primary peak %v smaller than secondary %v", p.Peak, p.Peak2)
	}
}

func TestPeaksSingleBinSpectrum(t *testing.T) {
	s := &Spectrum{Amplitudes: []float64{1}, Frequencies: []float64{0}}
	p := s.Peaks()
	if p.Peak != 0 || p.PeakF != 0 {
		t.Errorf("DC-only spectrum should yield zero peaks, got %+v", p)
	}
}
