package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFTPlan precomputes everything a transform of one length needs — the
// bit-reversal permutation and per-stage twiddle factors of the radix-2
// path, the chirp tables and pre-transformed convolution kernel of the
// Bluestein path, and the packing twiddles of the real-input path — so the
// per-window hot path of the authentication pipeline performs no trig and
// no table allocation.
//
// A plan is immutable after construction and safe for concurrent use: the
// only mutable state is a pool of scratch buffers, checked out per call.
// Plans are cheap to share; PlanFor caches one per length.
type FFTPlan struct {
	n    int
	pow2 bool

	// Radix-2 machinery (power-of-two lengths, and the sub-transforms of
	// the Bluestein convolution). twiddle holds the forward factors of
	// every stage concatenated: the stage of butterfly span L occupies
	// [L/2-1, L-1). The factors are generated with the same recurrence the
	// pre-plan code used, so planned transforms are bit-identical to it.
	perm       []int32
	twiddle    []complex128
	invTwiddle []complex128

	// Bluestein machinery (other lengths): FFT(x)_k is expressed as a
	// convolution with a chirp, computed with power-of-two FFTs of size m.
	// bhatF/bhatI are the forward-transformed convolution kernels for the
	// forward and inverse directions — fixed per length, so the per-call
	// work drops from five sub-FFTs to three.
	m      int
	sub    *FFTPlan
	chirpF []complex128
	chirpI []complex128
	bhatF  []complex128
	bhatI  []complex128

	// Real-input machinery (even lengths): n real samples are packed into
	// n/2 complex values, transformed with the half-length plan, and
	// unpacked with realTw[k] = exp(-2πik/n) — conjugate symmetry means
	// the full spectrum costs one half-length transform.
	half   *FFTPlan
	realTw []complex128

	scratch sync.Pool
}

// fftScratch is the per-call mutable state of a plan: the Bluestein
// convolution buffer and a general complex buffer for the real-input and
// spectrum paths.
type fftScratch struct {
	conv []complex128
	buf  []complex128
}

// planCache maps length -> *FFTPlan. Plans are immutable, so sharing one
// across goroutines is safe.
var planCache sync.Map

// PlanFor returns the shared, cached plan for transforms of length n.
func PlanFor(n int) (*FFTPlan, error) {
	if n <= 0 {
		return nil, ErrEmptyInput
	}
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*FFTPlan), nil
}

// NewFFTPlan builds an uncached plan for transforms of length n. Its
// power-of-two and half-length sub-plans still come from the shared cache.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n <= 0 {
		return nil, ErrEmptyInput
	}
	p := &FFTPlan{n: n, pow2: n&(n-1) == 0}
	if p.pow2 {
		p.buildRadix2()
	} else {
		if err := p.buildBluestein(); err != nil {
			return nil, err
		}
	}
	if n%2 == 0 && n > 1 {
		half, err := PlanFor(n / 2)
		if err != nil {
			return nil, err
		}
		p.half = half
		p.realTw = make([]complex128, n/2)
		for k := range p.realTw {
			p.realTw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		}
	}
	p.scratch.New = func() any { return &fftScratch{} }
	return p, nil
}

// Len returns the transform length the plan was built for.
func (p *FFTPlan) Len() int { return p.n }

// buildRadix2 precomputes the bit-reversal permutation and stage twiddle
// tables. The recurrence (w starts at 1, w *= wl per butterfly) matches
// the pre-plan implementation exactly so outputs stay bit-identical.
func (p *FFTPlan) buildRadix2() {
	n := p.n
	p.perm = make([]int32, n)
	if n > 1 {
		shift := 64 - uint(bits.Len(uint(n-1)))
		for i := 0; i < n; i++ {
			p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	p.twiddle = make([]complex128, 0, n-1)
	for length := 2; length <= n; length <<= 1 {
		ang := -2.0 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		w := complex(1, 0)
		for k := 0; k < length/2; k++ {
			p.twiddle = append(p.twiddle, w)
			w *= wl
		}
	}
	p.invTwiddle = make([]complex128, len(p.twiddle))
	for i, w := range p.twiddle {
		// Conjugation is exact, and multiplying conjugates reproduces the
		// inverse recurrence bit for bit.
		p.invTwiddle[i] = cmplx.Conj(w)
	}
}

// buildBluestein precomputes the chirp tables and the forward-transformed
// convolution kernels for both directions.
func (p *FFTPlan) buildBluestein() error {
	n := p.n
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sub, err := PlanFor(m)
	if err != nil {
		return err
	}
	p.m = m
	p.sub = sub
	p.chirpF = make([]complex128, n)
	p.chirpI = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		p.chirpF[k] = cmplx.Exp(complex(0, -math.Pi*float64(kk)/float64(n)))
		p.chirpI[k] = cmplx.Exp(complex(0, math.Pi*float64(kk)/float64(n)))
	}
	p.bhatF = chirpKernel(sub, p.chirpF, m)
	p.bhatI = chirpKernel(sub, p.chirpI, m)
	return nil
}

// chirpKernel builds FFT(b) for one direction's chirp.
func chirpKernel(sub *FFTPlan, chirp []complex128, m int) []complex128 {
	n := len(chirp)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	sub.radix2(b, false)
	return b
}

// radix2 runs the planned iterative Cooley-Tukey transform in place.
// len(a) must equal p.n, and p must be a power-of-two plan.
func (p *FFTPlan) radix2(a []complex128, inverse bool) {
	n := p.n
	if n == 1 {
		return
	}
	for i, j := range p.perm {
		if int32(i) < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	tws := p.twiddle
	if inverse {
		tws = p.invTwiddle
	}
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		tw := tws[off : off+half]
		for start := 0; start < n; start += length {
			base := a[start : start+length]
			for k := 0; k < half; k++ {
				u := base[k]
				v := base[k+half] * tw[k]
				base[k] = u + v
				base[k+half] = u - v
			}
		}
		off += half
	}
}

// bluestein computes the planned chirp-z transform of src into dst
// (dst may alias src). conv is the caller's m-length scratch.
func (p *FFTPlan) bluestein(dst, src, conv []complex128, inverse bool) {
	chirp, bhat := p.chirpF, p.bhatF
	if inverse {
		chirp, bhat = p.chirpI, p.bhatI
	}
	n, m := p.n, p.m
	for k := 0; k < n; k++ {
		conv[k] = src[k] * chirp[k]
	}
	for k := n; k < m; k++ {
		conv[k] = 0
	}
	p.sub.radix2(conv, false)
	for i := range conv {
		conv[i] *= bhat[i]
	}
	p.sub.radix2(conv, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		dst[k] = conv[k] * invM * chirp[k]
	}
}

// transform runs the unnormalized planned DFT of src into dst, which may
// alias src. src is not modified unless aliased.
func (p *FFTPlan) transform(dst, src []complex128, inverse bool) {
	if p.pow2 {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		p.radix2(dst, inverse)
		return
	}
	sc := p.scratch.Get().(*fftScratch)
	if cap(sc.conv) < p.m {
		sc.conv = make([]complex128, p.m)
	}
	p.bluestein(dst, src, sc.conv[:p.m], inverse)
	p.scratch.Put(sc)
}

// Transform computes the forward DFT of src into dst. dst and src must
// both have the plan's length; dst may be the same slice as src for an
// in-place transform, and src is left unmodified otherwise.
func (p *FFTPlan) Transform(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan is for length %d, got src %d dst %d", p.n, len(src), len(dst))
	}
	p.transform(dst, src, false)
	return nil
}

// InverseTransform computes the inverse DFT of src into dst, normalized
// by 1/N. The aliasing rules of Transform apply.
func (p *FFTPlan) InverseTransform(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("dsp: plan is for length %d, got src %d dst %d", p.n, len(src), len(dst))
	}
	p.transform(dst, src, true)
	n := complex(float64(p.n), 0)
	for i := range dst {
		dst[i] /= n
	}
	return nil
}

// RealTransform computes the first n/2+1 bins of the DFT of a real signal
// — the non-redundant half of a conjugate-symmetric spectrum. dst must
// have at least n/2+1 elements. For even lengths the signal is packed
// into a half-length complex transform, halving the butterfly work; odd
// lengths fall back to the full complex transform.
func (p *FFTPlan) RealTransform(dst []complex128, x []float64) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: plan is for length %d, got %d", p.n, len(x))
	}
	h := p.n / 2
	if len(dst) < h+1 {
		return fmt.Errorf("dsp: real transform needs %d output bins, got %d", h+1, len(dst))
	}
	if p.n == 1 {
		dst[0] = complex(x[0], 0)
		return nil
	}
	if p.n%2 != 0 {
		sc := p.scratch.Get().(*fftScratch)
		if cap(sc.buf) < p.n {
			sc.buf = make([]complex128, p.n)
		}
		buf := sc.buf[:p.n]
		for i, v := range x {
			buf[i] = complex(v, 0)
		}
		p.transform(buf, buf, false)
		copy(dst[:h+1], buf[:h+1])
		p.scratch.Put(sc)
		return nil
	}

	// Pack x into dst[:h] as z_j = x_{2j} + i*x_{2j+1} and transform with
	// the half-length plan, in place.
	z := dst[:h]
	for j := 0; j < h; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.transform(z, z, false)

	// Unpack: with Ze/Zo the DFTs of the even/odd samples,
	//   X_k     = Ze_k + e^{-2πik/n} Zo_k
	//   X_{h-k} = conj(Ze_k - e^{-2πik/n} Zo_k)
	// Pairs (k, h-k) are resolved together because the unpack overwrites
	// the packed values it reads.
	z0 := z[0]
	for k := 1; k <= h/2; k++ {
		zk, zc := z[k], cmplx.Conj(z[h-k])
		ze := (zk + zc) * 0.5
		zo := (zk - zc) * 0.5
		zo = complex(imag(zo), -real(zo)) // divide by i
		t := p.realTw[k] * zo
		dst[k] = ze + t
		dst[h-k] = cmplx.Conj(ze - t)
	}
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[h] = complex(real(z0)-imag(z0), 0)
	return nil
}

// AmplitudeSpectrumInto computes the one-sided amplitude spectrum of a
// real signal into out, reusing out's slices when they have capacity —
// the allocation-free form of AmplitudeSpectrum. The caller owns out; the
// plan only borrows it for the call.
//
// The transform runs through the full complex path rather than
// RealTransform: the packed real transform reorders floating-point
// operations, and the feature pipeline's paper artifacts are pinned
// bit-identical across refactors. Callers that can tolerate ulp-level
// differences for ~2x fewer butterflies should call RealTransform.
func (p *FFTPlan) AmplitudeSpectrumInto(out *Spectrum, x []float64, sampleRate float64) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: plan is for length %d, got %d", p.n, len(x))
	}
	if sampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	n := p.n
	half := n/2 + 1
	sc := p.scratch.Get().(*fftScratch)
	if cap(sc.buf) < n {
		sc.buf = make([]complex128, n)
	}
	spec := sc.buf[:n]
	for i, v := range x {
		spec[i] = complex(v, 0)
	}
	p.transform(spec, spec, false)
	out.Amplitudes = growFloats(out.Amplitudes, half)
	out.Frequencies = growFloats(out.Frequencies, half)
	for k := 0; k < half; k++ {
		amp := cmplx.Abs(spec[k]) / float64(n)
		if k != 0 && !(n%2 == 0 && k == n/2) {
			amp *= 2
		}
		out.Amplitudes[k] = amp
		out.Frequencies[k] = float64(k) * sampleRate / float64(n)
	}
	p.scratch.Put(sc)
	return nil
}

// growFloats returns s resized to n, reusing its backing array when it is
// large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
