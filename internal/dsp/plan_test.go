package dsp

import (
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"
)

// pipelineLengths is every window length the authentication pipeline can
// produce (50 Hz x 1..16 s), plus power-of-two, odd and prime lengths that
// exercise the radix-2, Bluestein and real-packing paths.
func pipelineLengths() []int {
	lengths := []int{1, 2, 3, 5, 7, 16, 31, 64, 101, 128, 256, 299, 512}
	for s := 1; s <= 16; s++ {
		lengths = append(lengths, 50*s)
	}
	return lengths
}

func maxRelErr(got, want []complex128) float64 {
	scale := 0.0
	for _, w := range want {
		if a := cmplx.Abs(w); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	worst := 0.0
	for i := range want {
		if d := cmplx.Abs(got[i]-want[i]) / scale; d > worst {
			worst = d
		}
	}
	return worst
}

// TestPlanMatchesNaiveDFT is the property test of the plan's forward
// transform: for every pipeline window length, planned output must match
// the textbook DFT definition.
func TestPlanMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range pipelineLengths() {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatalf("n=%d: FFT: %v", n, err)
		}
		want := naiveDFT(x)
		if e := maxRelErr(got, want); e > 1e-10 {
			t.Errorf("n=%d: forward transform deviates from naive DFT by %g", n, e)
		}
		back, err := IFFT(got)
		if err != nil {
			t.Fatalf("n=%d: IFFT: %v", n, err)
		}
		if e := maxRelErr(back, x); e > 1e-10 {
			t.Errorf("n=%d: IFFT(FFT(x)) deviates from x by %g", n, e)
		}
	}
}

// TestRealTransformMatchesComplex checks the conjugate-symmetry path: the
// packed real transform must agree with the full complex transform on the
// non-redundant half of the spectrum, for even (packed) and odd
// (fallback) lengths alike.
func TestRealTransformMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range pipelineLengths() {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		p, err := PlanFor(n)
		if err != nil {
			t.Fatalf("n=%d: PlanFor: %v", n, err)
		}
		got := make([]complex128, n/2+1)
		if err := p.RealTransform(got, x); err != nil {
			t.Fatalf("n=%d: RealTransform: %v", n, err)
		}
		full, err := FFTReal(x)
		if err != nil {
			t.Fatalf("n=%d: FFTReal: %v", n, err)
		}
		if e := maxRelErr(got, full[:n/2+1]); e > 1e-10 {
			t.Errorf("n=%d: real transform deviates from complex reference by %g", n, e)
		}
	}
}

// TestAmplitudeSpectrumIntoReuse checks the Into variant gives the same
// spectrum as the allocating API while reusing the caller's buffers.
func TestAmplitudeSpectrumIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var reused Spectrum
	for _, n := range []int{300, 256, 750} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want, err := AmplitudeSpectrum(x, 50)
		if err != nil {
			t.Fatalf("n=%d: AmplitudeSpectrum: %v", n, err)
		}
		p, err := PlanFor(n)
		if err != nil {
			t.Fatalf("n=%d: PlanFor: %v", n, err)
		}
		if err := p.AmplitudeSpectrumInto(&reused, x, 50); err != nil {
			t.Fatalf("n=%d: AmplitudeSpectrumInto: %v", n, err)
		}
		if len(reused.Amplitudes) != len(want.Amplitudes) {
			t.Fatalf("n=%d: got %d bins, want %d", n, len(reused.Amplitudes), len(want.Amplitudes))
		}
		for k := range want.Amplitudes {
			if reused.Amplitudes[k] != want.Amplitudes[k] {
				t.Fatalf("n=%d bin %d: amplitude %g != %g", n, k, reused.Amplitudes[k], want.Amplitudes[k])
			}
			if reused.Frequencies[k] != want.Frequencies[k] {
				t.Fatalf("n=%d bin %d: frequency %g != %g", n, k, reused.Frequencies[k], want.Frequencies[k])
			}
		}
	}
}

// TestAmplitudeSpectrumIntoAllocFree asserts the per-window hot path does
// not allocate once the plan and output buffers are warm.
func TestAmplitudeSpectrumIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	p, err := PlanFor(300)
	if err != nil {
		t.Fatal(err)
	}
	var spec Spectrum
	if err := p.AmplitudeSpectrumInto(&spec, x, 50); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.AmplitudeSpectrumInto(&spec, x, 50); err != nil {
			t.Fatal(err)
		}
	})
	// The scratch pool may be emptied by a GC between runs; allow a small
	// slack rather than demanding literally zero under test instrumentation.
	if allocs > 1 {
		t.Fatalf("AmplitudeSpectrumInto allocates %.1f times per call on the warm path", allocs)
	}
}

// TestPlanConcurrentSharing hammers one shared plan table from many
// goroutines across mixed lengths — the -race companion to the plan
// cache's immutability claim.
func TestPlanConcurrentSharing(t *testing.T) {
	lengths := []int{50, 300, 256, 750, 800}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var spec Spectrum
			for iter := 0; iter < 40; iter++ {
				n := lengths[iter%len(lengths)]
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				p, err := PlanFor(n)
				if err != nil {
					t.Errorf("PlanFor(%d): %v", n, err)
					return
				}
				if err := p.AmplitudeSpectrumInto(&spec, x, 50); err != nil {
					t.Errorf("n=%d: %v", n, err)
					return
				}
				want, err := AmplitudeSpectrum(x, 50)
				if err != nil {
					t.Errorf("n=%d: %v", n, err)
					return
				}
				for k := range want.Amplitudes {
					if spec.Amplitudes[k] != want.Amplitudes[k] {
						t.Errorf("n=%d bin %d: concurrent result diverged", n, k)
						return
					}
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
}

func TestPlanInvalidInputs(t *testing.T) {
	if _, err := PlanFor(0); err == nil {
		t.Error("PlanFor(0) should fail")
	}
	p, err := PlanFor(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Transform(make([]complex128, 8), make([]complex128, 4)); err == nil {
		t.Error("length-mismatched Transform should fail")
	}
	if err := p.RealTransform(make([]complex128, 2), make([]float64, 8)); err == nil {
		t.Error("undersized RealTransform dst should fail")
	}
	if err := p.AmplitudeSpectrumInto(&Spectrum{}, make([]float64, 8), 0); err == nil {
		t.Error("non-positive sample rate should fail")
	}
}
