package dsp

import (
	"fmt"
	"math"
)

// Magnitude computes the Euclidean magnitude of a tri-axial sample, the
// m = sqrt(x^2+y^2+z^2) quantity the paper computes from each
// accelerometer/gyroscope reading before windowing.
func Magnitude(x, y, z float64) float64 {
	return math.Sqrt(x*x + y*y + z*z)
}

// MagnitudeSeries converts parallel axis slices into a magnitude stream.
func MagnitudeSeries(x, y, z []float64) ([]float64, error) {
	if len(x) != len(y) || len(y) != len(z) {
		return nil, fmt.Errorf("dsp: axis length mismatch %d/%d/%d", len(x), len(y), len(z))
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = Magnitude(x[i], y[i], z[i])
	}
	return out, nil
}

// Windows slices a stream into non-overlapping windows of size samples,
// dropping any trailing partial window (matching the paper's fixed-length
// authentication windows). The returned windows share the backing array of
// the input; callers must not mutate them.
func Windows(stream []float64, size int) ([][]float64, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dsp: window size must be positive, got %d", size)
	}
	n := len(stream) / size
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, stream[i*size:(i+1)*size])
	}
	return out, nil
}

// SlidingWindows slices a stream into windows of size samples advancing by
// step samples (step < size yields overlap). Trailing partial windows are
// dropped. The returned windows alias the input.
func SlidingWindows(stream []float64, size, step int) ([][]float64, error) {
	if size <= 0 || step <= 0 {
		return nil, fmt.Errorf("dsp: window size %d and step %d must be positive", size, step)
	}
	var out [][]float64
	for start := 0; start+size <= len(stream); start += step {
		out = append(out, stream[start:start+size])
	}
	return out, nil
}

// WindowStats holds the time-domain statistics of one sensor window
// (Section V-C of the paper).
type WindowStats struct {
	Mean float64
	Var  float64
	Max  float64
	Min  float64
	Ran  float64 // Max - Min; the paper drops it as redundant with Var, but the feature-selection study needs it
}

// Stats computes the time-domain statistics of a window. Variance is the
// population variance (dividing by N), which is the convention for signal
// energy statistics over fixed windows.
func Stats(w []float64) (WindowStats, error) {
	if len(w) == 0 {
		return WindowStats{}, ErrEmptyInput
	}
	var s WindowStats
	s.Max = w[0]
	s.Min = w[0]
	sum := 0.0
	for _, v := range w {
		sum += v
		if v > s.Max {
			s.Max = v
		}
		if v < s.Min {
			s.Min = v
		}
	}
	s.Mean = sum / float64(len(w))
	ss := 0.0
	for _, v := range w {
		d := v - s.Mean
		ss += d * d
	}
	s.Var = ss / float64(len(w))
	s.Ran = s.Max - s.Min
	return s, nil
}

// Detrend subtracts the mean from a window in a new slice. Removing DC
// before the spectral analysis keeps gravity (for the accelerometer) from
// dominating the peak search.
func Detrend(w []float64) []float64 {
	if len(w) == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range w {
		mean += v
	}
	mean /= float64(len(w))
	out := make([]float64, len(w))
	for i, v := range w {
		out[i] = v - mean
	}
	return out
}
