// Package dsp implements the signal-processing substrate of SmarterYou:
// discrete Fourier transforms, sliding windows over sensor streams,
// magnitude computation, and the time- and frequency-domain statistics that
// Section V-C of the paper derives from each sensor window (mean, variance,
// max, min, range, spectral peak amplitude/frequency, and secondary peak).
package dsp

import (
	"errors"
)

// ErrEmptyInput is returned when a transform or statistic is requested on
// an empty signal.
var ErrEmptyInput = errors.New("dsp: empty input")

// FFT computes the discrete Fourier transform of x. For power-of-two
// lengths it uses an iterative radix-2 Cooley-Tukey algorithm; other
// lengths are handled by Bluestein's chirp-z algorithm, so any window size
// the authentication pipeline produces (50 Hz x 1..16 s = 50..800 samples)
// is supported exactly. The permutation, twiddle and chirp tables come
// from a cached per-length FFTPlan; use a plan directly for the
// allocation-free in-place entry points.
func FFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.Transform(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// IFFT computes the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	if err := p.InverseTransform(out, x); err != nil {
		return nil, err
	}
	return out, nil
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// Spectrum holds the one-sided amplitude spectrum of a real signal.
type Spectrum struct {
	// Amplitudes[i] is the amplitude at Frequencies[i] in the input's
	// units. The DC bin is included at index 0.
	Amplitudes []float64
	// Frequencies in Hz, determined by the sampling rate.
	Frequencies []float64
}

// AmplitudeSpectrum computes the one-sided amplitude spectrum of a real
// signal sampled at sampleRate Hz. Non-DC (and non-Nyquist) bins are scaled
// by 2/N so amplitudes correspond to sinusoid amplitudes in the signal.
// The transform runs through the cached plan's real-input path; callers on
// the per-window hot path should hold a plan and use AmplitudeSpectrumInto
// to reuse the output buffers too.
func AmplitudeSpectrum(x []float64, sampleRate float64) (*Spectrum, error) {
	p, err := PlanFor(len(x))
	if err != nil {
		return nil, err
	}
	out := &Spectrum{}
	if err := p.AmplitudeSpectrumInto(out, x, sampleRate); err != nil {
		return nil, err
	}
	return out, nil
}

// SpectralPeaks describes the dominant and secondary spectral components of
// a window, matching the paper's Peak, Peak_f, Peak2 and Peak2_f features.
type SpectralPeaks struct {
	Peak   float64 // amplitude of the main (non-DC) frequency
	PeakF  float64 // the main frequency in Hz
	Peak2  float64 // amplitude of the secondary frequency
	Peak2F float64 // the secondary frequency in Hz
}

// Peaks extracts the two largest non-DC spectral components. Neighbouring
// bins of the primary peak are excluded when searching for the secondary
// peak so that spectral leakage of the main component is not reported as a
// distinct second peak.
func (s *Spectrum) Peaks() SpectralPeaks {
	var p SpectralPeaks
	best := -1
	for k := 1; k < len(s.Amplitudes); k++ {
		if best == -1 || s.Amplitudes[k] > s.Amplitudes[best] {
			best = k
		}
	}
	if best == -1 {
		return p
	}
	p.Peak = s.Amplitudes[best]
	p.PeakF = s.Frequencies[best]
	second := -1
	for k := 1; k < len(s.Amplitudes); k++ {
		if k >= best-1 && k <= best+1 {
			continue
		}
		if second == -1 || s.Amplitudes[k] > s.Amplitudes[second] {
			second = k
		}
	}
	if second != -1 {
		p.Peak2 = s.Amplitudes[second]
		p.Peak2F = s.Frequencies[second]
	}
	return p
}
