// Package dsp implements the signal-processing substrate of SmarterYou:
// discrete Fourier transforms, sliding windows over sensor streams,
// magnitude computation, and the time- and frequency-domain statistics that
// Section V-C of the paper derives from each sensor window (mean, variance,
// max, min, range, spectral peak amplitude/frequency, and secondary peak).
package dsp

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// ErrEmptyInput is returned when a transform or statistic is requested on
// an empty signal.
var ErrEmptyInput = errors.New("dsp: empty input")

// FFT computes the discrete Fourier transform of x. For power-of-two
// lengths it uses an iterative radix-2 Cooley-Tukey algorithm; other
// lengths are handled by Bluestein's chirp-z algorithm, so any window size
// the authentication pipeline produces (50 Hz x 1..16 s = 50..800 samples)
// is supported exactly.
func FFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	if len(x)&(len(x)-1) == 0 {
		out := make([]complex128, len(x))
		copy(out, x)
		radix2(out, false)
		return out, nil
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, normalized by
// 1/N so that IFFT(FFT(x)) == x.
func IFFT(x []complex128) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	var out []complex128
	if len(x)&(len(x)-1) == 0 {
		out = make([]complex128, len(x))
		copy(out, x)
		radix2(out, true)
	} else {
		var err error
		out, err = bluestein(x, true)
		if err != nil {
			return nil, err
		}
	}
	n := complex(float64(len(x)), 0)
	for i := range out {
		out[i] /= n
	}
	return out, nil
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum.
func FFTReal(x []float64) ([]complex128, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// radix2 performs an in-place iterative Cooley-Tukey FFT on a
// power-of-two-length slice. If inverse is true the conjugate transform is
// computed (without the 1/N normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -2.0
	if inverse {
		sign = 2.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is in
// turn computed with power-of-two FFTs.
func bluestein(x []complex128, inverse bool) ([]complex128, error) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w_k = exp(sign * i*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k^2 mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * chirp[k]
	}
	return out, nil
}

// Spectrum holds the one-sided amplitude spectrum of a real signal.
type Spectrum struct {
	// Amplitudes[i] is the amplitude at Frequencies[i] in the input's
	// units. The DC bin is included at index 0.
	Amplitudes []float64
	// Frequencies in Hz, determined by the sampling rate.
	Frequencies []float64
}

// AmplitudeSpectrum computes the one-sided amplitude spectrum of a real
// signal sampled at sampleRate Hz. Non-DC (and non-Nyquist) bins are scaled
// by 2/N so amplitudes correspond to sinusoid amplitudes in the signal.
func AmplitudeSpectrum(x []float64, sampleRate float64) (*Spectrum, error) {
	if len(x) == 0 {
		return nil, ErrEmptyInput
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("dsp: sample rate must be positive, got %g", sampleRate)
	}
	spec, err := FFTReal(x)
	if err != nil {
		return nil, err
	}
	n := len(x)
	half := n/2 + 1
	out := &Spectrum{
		Amplitudes:  make([]float64, half),
		Frequencies: make([]float64, half),
	}
	for k := 0; k < half; k++ {
		amp := cmplx.Abs(spec[k]) / float64(n)
		// Double every bin that has a mirrored twin in the two-sided
		// spectrum (everything except DC and, for even N, Nyquist).
		if k != 0 && !(n%2 == 0 && k == n/2) {
			amp *= 2
		}
		out.Amplitudes[k] = amp
		out.Frequencies[k] = float64(k) * sampleRate / float64(n)
	}
	return out, nil
}

// SpectralPeaks describes the dominant and secondary spectral components of
// a window, matching the paper's Peak, Peak_f, Peak2 and Peak2_f features.
type SpectralPeaks struct {
	Peak   float64 // amplitude of the main (non-DC) frequency
	PeakF  float64 // the main frequency in Hz
	Peak2  float64 // amplitude of the secondary frequency
	Peak2F float64 // the secondary frequency in Hz
}

// Peaks extracts the two largest non-DC spectral components. Neighbouring
// bins of the primary peak are excluded when searching for the secondary
// peak so that spectral leakage of the main component is not reported as a
// distinct second peak.
func (s *Spectrum) Peaks() SpectralPeaks {
	var p SpectralPeaks
	best := -1
	for k := 1; k < len(s.Amplitudes); k++ {
		if best == -1 || s.Amplitudes[k] > s.Amplitudes[best] {
			best = k
		}
	}
	if best == -1 {
		return p
	}
	p.Peak = s.Amplitudes[best]
	p.PeakF = s.Frequencies[best]
	second := -1
	for k := 1; k < len(s.Amplitudes); k++ {
		if k >= best-1 && k <= best+1 {
			continue
		}
		if second == -1 || s.Amplitudes[k] > s.Amplitudes[second] {
			second = k
		}
	}
	if second != -1 {
		p.Peak2 = s.Amplitudes[second]
		p.Peak2F = s.Frequencies[second]
	}
	return p
}
