package replication

import (
	"reflect"
	"testing"
	"time"

	"smarteryou/internal/core"
	"smarteryou/internal/store"
)

// trainBundle fits a small real model so delta catch-up carries genuine
// registry entries, not just window chunks.
func trainBundle(t testing.TB) *core.ModelBundle {
	t.Helper()
	bundle, err := core.Train(
		fakeSamples("legit", 12, 1),
		fakeSamples("impostor", 12, 9),
		core.TrainConfig{Seed: 1},
	)
	if err != nil {
		t.Fatalf("core.Train: %v", err)
	}
	return bundle
}

// seedBulk loads a leader with a population big enough that shipping it
// twice would be clearly visible in the byte counters.
func seedBulk(t testing.TB, st *store.Store, users, windows int) {
	t.Helper()
	for i := 0; i < users; i++ {
		user := []string{"anon-d0", "anon-d1", "anon-d2", "anon-d3"}[i%4]
		if err := st.Enroll(user, fakeSamples(user, windows, float64(i)), false); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	if _, err := st.PublishModel("anon-d0", trainBundle(t)); err != nil {
		t.Fatalf("PublishModel: %v", err)
	}
}

// TestDeltaCatchUpShipsOnlyMissingChunks is the core delta-replication
// property: a follower that already converged once reconnects after the
// leader compacted past its cursor, declares the chunks it holds, and the
// leader ships only what is actually new — the bulk it already has stays
// home.
func TestDeltaCatchUpShipsOnlyMissingChunks(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{Shards: 2, SnapshotEvery: -1})
	defer func() { _ = leaderStore.Close() }()
	seedBulk(t, leaderStore, 32, 12)
	if err := leaderStore.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	followerStore := openStore(t, t.TempDir(), store.Options{Shards: 2, SnapshotEvery: -1})
	defer func() { _ = followerStore.Close() }()
	cfg := FollowerConfig{
		Store: followerStore, Key: testKey, LeaderAddr: replAddr, Logf: t.Logf,
	}
	follower, err := StartFollower(cfg)
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	cold := leader.Status()
	if cold.CatchupDeltaBytes == 0 {
		t.Fatal("cold catch-up from a compacted log did not use the delta path")
	}
	if cold.CatchupFullBytes != 0 {
		t.Fatalf("v2 follower fell back to full snapshots: %d bytes", cold.CatchupFullBytes)
	}
	if err := follower.Close(); err != nil {
		t.Fatalf("follower.Close: %v", err)
	}

	// The leader moves on a little and compacts, so the returning
	// follower's cursor is behind a compacted log again.
	if err := leaderStore.Enroll("anon-late", fakeSamples("anon-late", 2, 99), false); err != nil {
		t.Fatalf("Enroll late: %v", err)
	}
	if err := leaderStore.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	follower, err = StartFollower(cfg)
	if err != nil {
		t.Fatalf("StartFollower (reconnect): %v", err)
	}
	defer func() { _ = follower.Close() }()
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	warm := leader.Status()

	reconnectBytes := warm.CatchupDeltaBytes - cold.CatchupDeltaBytes
	saved := warm.CatchupDeltaSavedBytes - cold.CatchupDeltaSavedBytes
	if saved == 0 {
		t.Fatal("reconnect declared no reusable chunks — hello hashes are not working")
	}
	if reconnectBytes*4 >= cold.CatchupDeltaBytes {
		t.Fatalf("warm reconnect moved %d bytes, cold catch-up moved %d — delta is not saving",
			reconnectBytes, cold.CatchupDeltaBytes)
	}

	if !reflect.DeepEqual(leaderStore.Population(), followerStore.Population()) {
		t.Fatal("populations diverged after delta catch-up")
	}
	if !reflect.DeepEqual(leaderStore.ModelVersions(), followerStore.ModelVersions()) {
		t.Fatal("model registries diverged after delta catch-up")
	}
}

// TestDisableDeltaFallsBackToFullSnapshots pins the escape hatch: a
// follower with DisableDelta speaks protocol v1 and the leader ships
// whole snapshots, at full cost but equal correctness.
func TestDisableDeltaFallsBackToFullSnapshots(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{SnapshotEvery: -1})
	defer func() { _ = leaderStore.Close() }()
	seedBulk(t, leaderStore, 16, 8)
	if err := leaderStore.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	followerStore := openStore(t, t.TempDir(), store.Options{SnapshotEvery: -1})
	defer func() { _ = followerStore.Close() }()
	follower, err := StartFollower(FollowerConfig{
		Store: followerStore, Key: testKey, LeaderAddr: replAddr, Logf: t.Logf,
		DisableDelta: true,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer func() { _ = follower.Close() }()
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())

	st := leader.Status()
	if st.CatchupFullBytes == 0 {
		t.Fatal("DisableDelta follower did not use the full-snapshot path")
	}
	if st.CatchupDeltaBytes != 0 {
		t.Fatalf("DisableDelta follower still received %d delta bytes", st.CatchupDeltaBytes)
	}
	if !reflect.DeepEqual(leaderStore.Population(), followerStore.Population()) {
		t.Fatal("populations diverged on the v1 fallback path")
	}
	if !reflect.DeepEqual(leaderStore.ModelVersions(), followerStore.ModelVersions()) {
		t.Fatal("model registries diverged on the v1 fallback path")
	}
}

// BenchmarkDeltaCatchUp measures the lagging-follower reconnect: each
// iteration, the leader takes a small write and compacts, and the warm
// follower reconnects and converges via a chunk delta. The delta-bytes/op
// and full-bytes/op metrics are the headline pair recorded in
// BENCH_store.json: what the reconnect actually moved versus what a full
// snapshot of the same state would have.
func BenchmarkDeltaCatchUp(b *testing.B) {
	leaderStore, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = leaderStore.Close() }()
	seedBulk(b, leaderStore, 64, 16)
	if err := leaderStore.Snapshot(); err != nil {
		b.Fatal(err)
	}
	leader, err := NewLeader(LeaderConfig{Store: leaderStore, Key: testKey})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := leader.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = leader.Close() }()

	followerStore, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = followerStore.Close() }()
	cfg := FollowerConfig{Store: followerStore, Key: testKey, LeaderAddr: addr.String()}
	follower, err := StartFollower(cfg)
	if err != nil {
		b.Fatal(err)
	}
	waitConvergedB(b, followerStore, leaderStore)
	if err := follower.Close(); err != nil {
		b.Fatal(err)
	}
	base := leader.Status()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := leaderStore.Enroll("anon-tick", fakeSamples("anon-tick", 1, float64(i)), false); err != nil {
			b.Fatal(err)
		}
		if err := leaderStore.Snapshot(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		follower, err := StartFollower(cfg)
		if err != nil {
			b.Fatal(err)
		}
		waitConvergedB(b, followerStore, leaderStore)
		b.StopTimer()
		if err := follower.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()

	st := leader.Status()
	deltaPerOp := float64(st.CatchupDeltaBytes-base.CatchupDeltaBytes) / float64(b.N)
	b.ReportMetric(deltaPerOp, "delta-bytes/op")
	full := 0
	for shard := 0; shard < len(leaderStore.ShardLastSeqs()); shard++ {
		data, _, err := leaderStore.ShardSnapshotBytes(shard)
		if err != nil {
			b.Fatal(err)
		}
		full += len(data)
	}
	b.ReportMetric(float64(full), "full-bytes/op")
}

// waitConvergedB is waitConverged for benchmarks (no testing.T).
func waitConvergedB(b *testing.B, follower, leader *store.Store) {
	b.Helper()
	want := leader.ShardLastSeqs()
	for !reflect.DeepEqual(follower.ShardLastSeqs(), want) {
		time.Sleep(100 * time.Microsecond)
	}
}
