package replication

import (
	"bytes"
	"reflect"
	"testing"

	"smarteryou/internal/cas"
)

// FuzzReplFrame throws arbitrary bytes at every replication frame
// decoder. The decoders guard a network boundary: whatever arrives, they
// must fail cleanly — no panics, no out-of-range reads — and anything
// they accept must re-encode to an equivalent frame.
func FuzzReplFrame(f *testing.F) {
	key := []byte("fuzz-key")
	f.Add(encodeHello(helloFrame{version: 1, seqs: []uint64{0, 5, 12}}, key))
	f.Add(encodeHello(helloFrame{
		version: 2,
		seqs:    []uint64{7},
		hashes:  []cas.Hash{cas.HashOf([]byte("chunk-a")), cas.HashOf([]byte("chunk-b"))},
	}, key))
	f.Add(encodeWelcome(welcomeFrame{version: 1, clientAddr: "127.0.0.1:7600", seqs: []uint64{3}}, key))
	f.Add(encodeRecordFrame(recordFrame{shard: 2, payload: []byte{0x01, 0xaa, 0xbb}}))
	f.Add(encodeSnapshotChunk(snapshotChunk{shard: 1, last: true, lastSeq: 9, data: []byte("snap")}))
	f.Add(encodeSnapshotChunk(snapshotChunk{shard: 0, data: bytes.Repeat([]byte{0x55}, 64)}))
	f.Add(encodeAck(ackFrame{shard: 3, seq: 77}))
	f.Add(encodeDeltaBody(deltaBody{shard: 1, data: []byte("cas body bytes")}))
	f.Add(encodeDeltaChunks(deltaChunks{
		shard:  2,
		hashes: []cas.Hash{cas.HashOf([]byte("payload"))},
		data:   [][]byte{[]byte("payload")},
	}))
	f.Add(encodeDeltaDone(deltaDone{shard: 0, lastSeq: 31}))
	f.Add(encodeErrorFrame("shard count mismatch"))
	f.Add([]byte{frameHello})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		// Whatever a decoder accepts must survive a re-encode/re-decode
		// round trip unchanged. Byte-exact equality is deliberately not
		// required: varints have non-minimal encodings the decoders accept.
		if h, err := decodeHello(payload, key); err == nil {
			if h2, err := decodeHello(encodeHello(h, key), key); err != nil || !reflect.DeepEqual(h, h2) {
				t.Fatalf("hello did not round-trip: %v vs %v (%v)", h, h2, err)
			}
		}
		if w, err := decodeWelcome(payload, key); err == nil {
			if w2, err := decodeWelcome(encodeWelcome(w, key), key); err != nil || !reflect.DeepEqual(w, w2) {
				t.Fatalf("welcome did not round-trip: %v vs %v (%v)", w, w2, err)
			}
		}
		if r, err := decodeRecordFrame(payload); err == nil {
			if len(r.payload) == 0 {
				t.Fatalf("record decoder accepted an empty payload")
			}
			if r2, err := decodeRecordFrame(encodeRecordFrame(r)); err != nil || !reflect.DeepEqual(r, r2) {
				t.Fatalf("record did not round-trip (%v)", err)
			}
		}
		if c, err := decodeSnapshotChunk(payload); err == nil {
			if c2, err := decodeSnapshotChunk(encodeSnapshotChunk(c)); err != nil || !reflect.DeepEqual(c, c2) {
				t.Fatalf("snapshot chunk did not round-trip (%v)", err)
			}
		}
		if a, err := decodeAck(payload); err == nil {
			if a2, err := decodeAck(encodeAck(a)); err != nil || a != a2 {
				t.Fatalf("ack did not round-trip: %+v vs %+v (%v)", a, a2, err)
			}
		}
		if d, err := decodeDeltaBody(payload); err == nil {
			if d2, err := decodeDeltaBody(encodeDeltaBody(d)); err != nil || !reflect.DeepEqual(d, d2) {
				t.Fatalf("delta body did not round-trip (%v)", err)
			}
		}
		if c, err := decodeDeltaChunks(payload); err == nil {
			if len(c.hashes) != len(c.data) {
				t.Fatalf("delta chunks decoded %d hashes for %d payloads", len(c.hashes), len(c.data))
			}
			if c2, err := decodeDeltaChunks(encodeDeltaChunks(c)); err != nil || !reflect.DeepEqual(c, c2) {
				t.Fatalf("delta chunks did not round-trip (%v)", err)
			}
		}
		if d, err := decodeDeltaDone(payload); err == nil {
			if d2, err := decodeDeltaDone(encodeDeltaDone(d)); err != nil || d != d2 {
				t.Fatalf("delta done did not round-trip: %+v vs %+v (%v)", d, d2, err)
			}
		}
		_, _ = decodeErrorFrame(payload)

		// The outer framing layer must reject corruption too: wrap the
		// payload, read it back, then flip a byte and demand an error.
		var buf bytes.Buffer
		if err := writeWireFrame(&buf, payload); err == nil && len(payload) > 0 {
			framed := buf.Bytes()
			got, err := readWireFrame(bytes.NewReader(framed))
			if err != nil {
				t.Fatalf("round-trip read failed: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("framed payload mutated in transit")
			}
			flipped := append([]byte(nil), framed...)
			flipped[len(flipped)-1] ^= 0xff
			if _, err := readWireFrame(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("corrupted frame passed the CRC")
			}
		}
	})
}
