package replication

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"crypto/hmac"
	"crypto/sha256"

	"smarteryou/internal/cas"
)

// Wire framing: every replication message is one frame,
//
//	[4-byte payload length, big-endian]
//	[4-byte CRC32 (IEEE) of the payload]
//	[payload: frame-type byte + type-specific body]
//
// — the same header the store's WAL uses, so torn and corrupted frames
// are detected the same way. Handshake frames (hello/welcome) carry an
// additional HMAC-SHA256 trailer under the pre-shared key: they
// authenticate the session the way transport envelopes authenticate
// requests. Data frames rely on the CRC plus the authenticated session.
//
// Record frames embed the WAL record payload verbatim — first byte is
// the store codec's format byte (binary v1, or '{' for a legacy JSON
// record) — so the follower logs exactly the bytes the leader logged.

// Frame type bytes.
const (
	frameHello    = 0x68 // 'h': follower -> leader handshake
	frameWelcome  = 0x77 // 'w': leader -> follower handshake reply
	frameSnapshot = 0x73 // 's': leader -> follower snapshot chunk
	frameRecord   = 0x72 // 'r': leader -> follower one WAL record
	frameAck      = 0x61 // 'a': follower -> leader applied cursor
	frameError    = 0x65 // 'e': fatal protocol error, then close

	// Delta catch-up frames (protocol version 2): instead of a full
	// snapshot, the leader ships the content-addressed snapshot body plus
	// only the chunks the follower did not declare in its hello.
	frameDeltaBody   = 0x64 // 'd': leader -> follower snapshot.cas body
	frameDeltaChunks = 0x63 // 'c': leader -> follower batch of chunk payloads
	frameDeltaDone   = 0x66 // 'f': leader -> follower delta complete, install
)

// maxWireFrame bounds one replication frame. Snapshot chunks are cut at
// snapshotChunkBytes and records are bounded by the store's own record
// limit, so anything larger is corruption.
const maxWireFrame = 288 << 20

// snapshotChunkBytes is the snapshot streaming chunk size: big enough to
// amortize framing, small enough to interleave progress and bound
// per-frame memory.
const snapshotChunkBytes = 1 << 20

// macSize is the HMAC-SHA256 trailer length on handshake frames.
const macSize = sha256.Size

// Errors from the frame codec.
var (
	errFrameTooLarge = errors.New("replication: frame exceeds size limit")
	errBadFrame      = errors.New("replication: malformed frame")
)

// writeWireFrame writes one length+CRC framed payload.
func writeWireFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxWireFrame {
		return errFrameTooLarge
	}
	var header [8]byte
	binary.BigEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("replication: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("replication: write frame body: %w", err)
	}
	return nil
}

// readWireFrame reads one framed payload, verifying length and CRC.
func readWireFrame(r io.Reader) ([]byte, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(header[0:4])
	if n > maxWireFrame {
		return nil, errFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("replication: read frame body: %w", err)
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.BigEndian.Uint32(header[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", errBadFrame)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty payload", errBadFrame)
	}
	return payload, nil
}

// wireReader is a failure-latching cursor over a frame payload, the same
// shape as the store codec's reader: the first error sticks and every
// later accessor returns zero values, so decoders check err once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", errBadFrame, fmt.Sprintf(format, args...))
	}
}

func (r *wireReader) remaining() int { return len(r.b) - r.off }

func (r *wireReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("truncated byte")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.remaining()) {
		r.fail("string length %d exceeds %d remaining bytes", n, r.remaining())
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// seqList decodes a uvarint-counted list of uvarint cursors, bounding
// the count by the remaining bytes (each entry is at least one byte).
func (r *wireReader) seqList() []uint64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("cursor count %d exceeds %d remaining bytes", n, r.remaining())
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.uvarint())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// hash reads one raw 32-byte chunk hash.
func (r *wireReader) hash() cas.Hash {
	var h cas.Hash
	if r.err != nil {
		return h
	}
	if r.remaining() < cas.HashSize {
		r.fail("truncated hash")
		return h
	}
	copy(h[:], r.b[r.off:])
	r.off += cas.HashSize
	return h
}

// bytes reads a uvarint-length-prefixed byte slice (no copy).
func (r *wireReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("byte length %d exceeds %d remaining bytes", n, r.remaining())
		return nil
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// rest returns everything not yet consumed (no copy; callers that retain
// it must copy).
func (r *wireReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	b := r.b[r.off:]
	r.off = len(r.b)
	return b
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendSeqs(buf []byte, seqs []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(seqs)))
	for _, s := range seqs {
		buf = binary.AppendUvarint(buf, s)
	}
	return buf
}

// sealHandshake appends the HMAC trailer over buf's current contents.
func sealHandshake(buf, key []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(buf)
	return mac.Sum(buf)
}

// openHandshake verifies and strips the HMAC trailer.
func openHandshake(payload, key []byte) ([]byte, error) {
	if len(payload) < macSize+1 {
		return nil, fmt.Errorf("%w: handshake frame too short", errBadFrame)
	}
	body, tag := payload[:len(payload)-macSize], payload[len(payload)-macSize:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, fmt.Errorf("%w: handshake authentication failed", ErrBadHandshake)
	}
	return body, nil
}

// helloFrame is the follower's opening message. Version 2 hellos also
// declare the chunk hashes the follower's CAS already holds, so a delta
// catch-up can skip shipping them.
type helloFrame struct {
	version int
	seqs    []uint64 // per-shard durable cursors; length = shard count
	hashes  []cas.Hash
}

func encodeHello(h helloFrame, key []byte) []byte {
	buf := []byte{frameHello, byte(h.version)}
	buf = appendSeqs(buf, h.seqs)
	if h.version >= 2 {
		buf = binary.AppendUvarint(buf, uint64(len(h.hashes)))
		for _, hash := range h.hashes {
			buf = append(buf, hash[:]...)
		}
	}
	return sealHandshake(buf, key)
}

func decodeHello(payload, key []byte) (helloFrame, error) {
	body, err := openHandshake(payload, key)
	if err != nil {
		return helloFrame{}, err
	}
	r := &wireReader{b: body}
	if t := r.byte(); t != frameHello && r.err == nil {
		r.fail("frame type %#x, want hello", t)
	}
	h := helloFrame{version: int(r.byte())}
	h.seqs = r.seqList()
	if h.version >= 2 && r.err == nil {
		n := r.uvarint()
		if n > uint64(r.remaining()/cas.HashSize) {
			r.fail("hash count %d exceeds %d remaining bytes", n, r.remaining())
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			h.hashes = append(h.hashes, r.hash())
		}
	}
	if r.err == nil && r.off != len(body) {
		r.fail("%d trailing bytes", len(body)-r.off)
	}
	if r.err != nil {
		return helloFrame{}, r.err
	}
	return h, nil
}

// welcomeFrame is the leader's handshake reply.
type welcomeFrame struct {
	version int
	// clientAddr is the leader's advertised client-facing address; the
	// follower's server redirects writes there.
	clientAddr string
	seqs       []uint64 // the leader's per-shard durable cursors
}

func encodeWelcome(w welcomeFrame, key []byte) []byte {
	buf := []byte{frameWelcome, byte(w.version)}
	buf = appendStr(buf, w.clientAddr)
	buf = appendSeqs(buf, w.seqs)
	return sealHandshake(buf, key)
}

func decodeWelcome(payload, key []byte) (welcomeFrame, error) {
	body, err := openHandshake(payload, key)
	if err != nil {
		return welcomeFrame{}, err
	}
	r := &wireReader{b: body}
	if t := r.byte(); t != frameWelcome && r.err == nil {
		r.fail("frame type %#x, want welcome", t)
	}
	w := welcomeFrame{version: int(r.byte())}
	w.clientAddr = r.str()
	w.seqs = r.seqList()
	if r.err == nil && r.off != len(body) {
		r.fail("%d trailing bytes", len(body)-r.off)
	}
	if r.err != nil {
		return welcomeFrame{}, r.err
	}
	return w, nil
}

// recordFrame carries one WAL record payload for a shard.
type recordFrame struct {
	shard   int
	payload []byte // store WAL payload, format byte first
}

func encodeRecordFrame(f recordFrame) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(f.payload))
	buf = append(buf, frameRecord)
	buf = binary.AppendUvarint(buf, uint64(f.shard))
	return append(buf, f.payload...)
}

func decodeRecordFrame(payload []byte) (recordFrame, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameRecord && r.err == nil {
		r.fail("frame type %#x, want record", t)
	}
	f := recordFrame{shard: int(r.uvarint())}
	f.payload = r.rest()
	if r.err == nil && len(f.payload) == 0 {
		r.fail("empty record payload")
	}
	if r.err != nil {
		return recordFrame{}, r.err
	}
	return f, nil
}

// snapshotChunk is one slice of a shard snapshot. The final chunk sets
// last and carries the snapshot's covered sequence number so the
// follower can ack it after installing.
type snapshotChunk struct {
	shard   int
	last    bool
	lastSeq uint64
	data    []byte
}

func encodeSnapshotChunk(c snapshotChunk) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64+1+len(c.data))
	buf = append(buf, frameSnapshot)
	buf = binary.AppendUvarint(buf, uint64(c.shard))
	if c.last {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, c.lastSeq)
	return append(buf, c.data...)
}

func decodeSnapshotChunk(payload []byte) (snapshotChunk, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameSnapshot && r.err == nil {
		r.fail("frame type %#x, want snapshot", t)
	}
	c := snapshotChunk{shard: int(r.uvarint())}
	switch flag := r.byte(); flag {
	case 0:
	case 1:
		c.last = true
	default:
		r.fail("snapshot flag %d", flag)
	}
	c.lastSeq = r.uvarint()
	c.data = r.rest()
	if r.err != nil {
		return snapshotChunk{}, r.err
	}
	return c, nil
}

// deltaBody carries one shard's content-addressed snapshot body — the
// exact bytes of its snapshot.cas file, manifests only, no chunk data.
type deltaBody struct {
	shard int
	data  []byte
}

func encodeDeltaBody(d deltaBody) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(d.data))
	buf = append(buf, frameDeltaBody)
	buf = binary.AppendUvarint(buf, uint64(d.shard))
	return append(buf, d.data...)
}

func decodeDeltaBody(payload []byte) (deltaBody, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameDeltaBody && r.err == nil {
		r.fail("frame type %#x, want delta body", t)
	}
	d := deltaBody{shard: int(r.uvarint())}
	d.data = r.rest()
	if r.err == nil && len(d.data) == 0 {
		r.fail("empty delta body")
	}
	if r.err != nil {
		return deltaBody{}, r.err
	}
	return d, nil
}

// deltaChunks is one batch of chunk payloads for a shard's in-flight
// delta: per chunk a raw hash and a length-prefixed payload. The
// receiver verifies each payload against its hash when storing it.
type deltaChunks struct {
	shard  int
	hashes []cas.Hash
	data   [][]byte
}

func encodeDeltaChunks(d deltaChunks) []byte {
	size := 1 + 2*binary.MaxVarintLen64
	for _, c := range d.data {
		size += cas.HashSize + binary.MaxVarintLen64 + len(c)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, frameDeltaChunks)
	buf = binary.AppendUvarint(buf, uint64(d.shard))
	buf = binary.AppendUvarint(buf, uint64(len(d.hashes)))
	for i, h := range d.hashes {
		buf = append(buf, h[:]...)
		buf = binary.AppendUvarint(buf, uint64(len(d.data[i])))
		buf = append(buf, d.data[i]...)
	}
	return buf
}

func decodeDeltaChunks(payload []byte) (deltaChunks, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameDeltaChunks && r.err == nil {
		r.fail("frame type %#x, want delta chunks", t)
	}
	d := deltaChunks{shard: int(r.uvarint())}
	n := r.uvarint()
	if r.err == nil && n > uint64(r.remaining()/(cas.HashSize+1)) {
		r.fail("chunk count %d exceeds %d remaining bytes", n, r.remaining())
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		d.hashes = append(d.hashes, r.hash())
		d.data = append(d.data, r.bytes())
	}
	if r.err == nil && r.off != len(payload) {
		r.fail("%d trailing bytes", len(payload)-r.off)
	}
	if r.err != nil {
		return deltaChunks{}, r.err
	}
	return d, nil
}

// deltaDone closes one shard's delta: every needed chunk has been sent
// (or was already declared), the follower installs body + chunks and
// jumps its cursor to lastSeq.
type deltaDone struct {
	shard   int
	lastSeq uint64
}

func encodeDeltaDone(d deltaDone) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	buf = append(buf, frameDeltaDone)
	buf = binary.AppendUvarint(buf, uint64(d.shard))
	return binary.AppendUvarint(buf, d.lastSeq)
}

func decodeDeltaDone(payload []byte) (deltaDone, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameDeltaDone && r.err == nil {
		r.fail("frame type %#x, want delta done", t)
	}
	d := deltaDone{shard: int(r.uvarint())}
	d.lastSeq = r.uvarint()
	if r.err == nil && r.off != len(payload) {
		r.fail("%d trailing bytes", len(payload)-r.off)
	}
	if r.err != nil {
		return deltaDone{}, r.err
	}
	return d, nil
}

// ackFrame acknowledges a durable (shard, seq) on the follower.
type ackFrame struct {
	shard int
	seq   uint64
}

func encodeAck(a ackFrame) []byte {
	buf := make([]byte, 0, 1+2*binary.MaxVarintLen64)
	buf = append(buf, frameAck)
	buf = binary.AppendUvarint(buf, uint64(a.shard))
	return binary.AppendUvarint(buf, a.seq)
}

func decodeAck(payload []byte) (ackFrame, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameAck && r.err == nil {
		r.fail("frame type %#x, want ack", t)
	}
	a := ackFrame{shard: int(r.uvarint())}
	a.seq = r.uvarint()
	if r.err == nil && r.off != len(payload) {
		r.fail("%d trailing bytes", len(payload)-r.off)
	}
	if r.err != nil {
		return ackFrame{}, r.err
	}
	return a, nil
}

// encodeErrorFrame carries a fatal message before the sender closes.
func encodeErrorFrame(msg string) []byte {
	buf := []byte{frameError}
	return appendStr(buf, msg)
}

func decodeErrorFrame(payload []byte) (string, error) {
	r := &wireReader{b: payload}
	if t := r.byte(); t != frameError && r.err == nil {
		r.fail("frame type %#x, want error", t)
	}
	msg := r.str()
	if r.err != nil {
		return "", r.err
	}
	return msg, nil
}
