// Package replication moves the Authentication Server's durable state
// between machines: a leader tails every store shard's write-ahead log
// and streams the sequence-numbered records to followers, which apply
// them into their own internal/store instance. The paper's architecture
// (Lee & Lee, DSN 2017, Fig. 1) puts the population store and the
// trained-model registry on a single cloud server; at millions of users
// that server must survive machine loss and scale its read traffic
// (model downloads, outsourced authenticate calls), which is exactly
// what a replicated follower provides.
//
// Protocol (follower dials the leader's replication listener):
//
//  1. The follower sends a hello carrying its shard count and each
//     shard's last durable sequence number, authenticated with an
//     HMAC-SHA256 tag under the pre-shared key.
//  2. The leader answers with a welcome (its advertised client address,
//     for read-only followers to redirect writes to, and its own
//     per-shard cursors), equally authenticated.
//  3. Per shard, the leader replays the on-disk log tail after the
//     follower's cursor. If that tail was already compacted away, it
//     ships the shard's snapshot instead — encoded from the same
//     copy-on-write view the background compactor uses, so leader
//     appends never pause — and resumes the record stream from the
//     snapshot's sequence number.
//  4. Live records then flow as they commit: every frame is
//     length-prefixed and CRC-checked, and record frames carry the WAL
//     payload verbatim (the store codec's format byte and all), so a
//     follower appends byte-identical log records.
//  5. The follower acknowledges each applied (shard, sequence) pair;
//     the leader tracks per-follower lag for the stats endpoint.
//
// Delivery is at-least-once: a reconnecting follower re-sends its
// durable cursors and the store skips duplicates idempotently, while a
// sequence gap aborts the stream so it restarts from the cursor. A slow
// follower whose outbound queue overflows is disconnected rather than
// allowed to stall the leader; it catches up on reconnect.
package replication

import (
	"errors"
	"fmt"
	"time"
)

// Defaults for the tunable knobs.
const (
	// defaultQueueDepth is the per-follower live-record queue; overflow
	// disconnects the follower (it reconnects and catches up from disk).
	defaultQueueDepth = 8192
	// defaultDialTimeout bounds a follower's connection attempt.
	defaultDialTimeout = 5 * time.Second
	// defaultRedialDelay spaces a follower's reconnection attempts.
	defaultRedialDelay = 250 * time.Millisecond
	// handshakeTimeout bounds each side's wait for hello/welcome.
	handshakeTimeout = 10 * time.Second
)

// Errors surfaced by the replication protocol.
var (
	// ErrShardMismatch indicates leader and follower stores disagree on
	// the shard count; replication cannot proceed (recreate the follower
	// store with the leader's shard count).
	ErrShardMismatch = errors.New("replication: shard count mismatch")
	// ErrBadHandshake indicates a hello/welcome that failed
	// authentication or was malformed.
	ErrBadHandshake = errors.New("replication: handshake failed")
)

// Status is a point-in-time view of one replication endpoint, shaped for
// the server's stats response.
type Status struct {
	// Role is "leader" or "follower".
	Role string
	// Connected reports, on followers, whether the stream is up.
	Connected bool
	// LeaderAddr is, on followers, the leader's advertised client
	// address (learned from the welcome frame).
	LeaderAddr string
	// ShardSeqs is the local store's per-shard durable cursor.
	ShardSeqs []uint64
	// Followers reports, on leaders, each connected follower's progress.
	Followers []FollowerProgress
	// CatchupFullBytes counts, on leaders, bytes shipped via full
	// snapshot catch-ups (protocol v1 followers).
	CatchupFullBytes uint64
	// CatchupDeltaBytes counts, on leaders, bytes shipped via delta
	// catch-ups (snapshot bodies plus missing chunks).
	CatchupDeltaBytes uint64
	// CatchupDeltaSavedBytes counts, on leaders, chunk bytes a delta
	// catch-up skipped because the follower already held them.
	CatchupDeltaSavedBytes uint64
}

// FollowerProgress is one follower's acknowledged replication state as
// seen by the leader.
type FollowerProgress struct {
	// Addr is the follower connection's remote address.
	Addr string
	// Acked is the follower's last acknowledged sequence per shard.
	Acked []uint64
	// Lag is the total outstanding records across shards (leader cursor
	// minus acknowledged, summed).
	Lag uint64
}

// lagBetween sums per-shard cursor differences, clamping at zero.
func lagBetween(lead, acked []uint64) uint64 {
	var lag uint64
	for i := range lead {
		if i < len(acked) && acked[i] < lead[i] {
			lag += lead[i] - acked[i]
		}
	}
	return lag
}

// checkShardCounts verifies the two sides agree before any state moves.
func checkShardCounts(local, remote int) error {
	if local != remote {
		return fmt.Errorf("%w: local store has %d shards, peer has %d",
			ErrShardMismatch, local, remote)
	}
	return nil
}
