package replication

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smarteryou/internal/ctxdetect"
	"smarteryou/internal/features"
	"smarteryou/internal/sensing"
	"smarteryou/internal/store"
	"smarteryou/internal/transport"
)

var testKey = []byte("replication-test-key")

// fakeSamples builds deterministic feature windows without the sensing
// pipeline; the store and the wire treat them opaquely.
func fakeSamples(user string, n int, base float64) []features.WindowSample {
	sf := func(v float64) features.SensorFeatures {
		return features.SensorFeatures{
			Mean: v, Var: 1 + v/10, Max: v + 2, Min: v - 2, Ran: 4,
			Peak: v, PeakF: 1 + v/100, Peak2: v / 2, Peak2F: 2,
		}
	}
	out := make([]features.WindowSample, n)
	for i := range out {
		v := base + float64(i)*0.1
		out[i] = features.WindowSample{
			UserID:  user,
			Context: sensing.ContextStationaryUse,
			Day:     float64(i) / 10,
			Phone:   features.DeviceFeatures{Acc: sf(v), Gyr: sf(v + 1)},
			Watch:   features.DeviceFeatures{Acc: sf(v + 2), Gyr: sf(v + 3)},
		}
	}
	return out
}

func openStore(t *testing.T, dir string, opt store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opt)
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return s
}

func startLeader(t *testing.T, st *store.Store, advertise string) (*Leader, string) {
	t.Helper()
	l, err := NewLeader(LeaderConfig{Store: st, Key: testKey, AdvertiseAddr: advertise, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewLeader: %v", err)
	}
	addr, err := l.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	return l, addr.String()
}

// waitConverged polls until the follower store's cursors match want.
func waitConverged(t *testing.T, follower *store.Store, want []uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got := follower.ShardLastSeqs()
		if reflect.DeepEqual(got, want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: have %v, want %v", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// buildFixture trains a small real context detector over synthetic users
// so the follower can serve end-to-end authenticate calls.
func buildFixture(t *testing.T) (*ctxdetect.Detector, map[string][]features.WindowSample) {
	t.Helper()
	pop, err := sensing.NewPopulation(5, 777)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	byUser := make(map[string][]features.WindowSample)
	var ctxTrain []features.WindowSample
	for i, u := range pop.Users {
		samples, err := features.Collect(u, features.CollectOptions{
			WindowSeconds:  6,
			SessionSeconds: 60,
			Sessions:       1,
			Seed:           int64(10 + i),
		})
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		byUser[u.ID] = samples
		ctxTrain = append(ctxTrain, samples...)
	}
	det, err := ctxdetect.Train(ctxdetect.FromSamples(ctxTrain), ctxdetect.Config{Seed: 1, Trees: 10})
	if err != nil {
		t.Fatalf("ctxdetect.Train: %v", err)
	}
	return det, byUser
}

// TestLeaderFollowerFailover is the end-to-end acceptance path: a leader
// serves enrollments and a trained model, a follower converges to the
// same per-shard sequences and serves authenticate and fetch-model while
// redirecting writes, and after the leader dies the promoted follower
// accepts new enrollments with monotonically continuing sequences.
func TestLeaderFollowerFailover(t *testing.T) {
	det, byUser := buildFixture(t)

	leaderStore := openStore(t, t.TempDir(), store.Options{Shards: 2})
	leaderSrv, err := transport.NewServer(transport.ServerConfig{
		Key: testKey, Detector: det, Store: leaderStore, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewServer leader: %v", err)
	}
	leaderClientAddr, err := leaderSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start leader: %v", err)
	}
	leader, replAddr := startLeader(t, leaderStore, leaderClientAddr.String())

	leaderClient, err := transport.NewClient(transport.ClientConfig{Addr: leaderClientAddr.String(), Key: testKey})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	for id, samples := range byUser {
		if _, err := leaderClient.Enroll(id, samples); err != nil {
			t.Fatalf("Enroll %s: %v", id, err)
		}
	}
	if _, version, err := leaderClient.TrainVersioned("user-00", transport.TrainParams{Seed: 1}); err != nil {
		t.Fatalf("TrainVersioned: %v", err)
	} else if version != 1 {
		t.Fatalf("trained version %d, want 1", version)
	}

	// Follower: store, read-only server, replication stream.
	followerStore := openStore(t, t.TempDir(), store.Options{Shards: 2})
	followerSrv, err := transport.NewServer(transport.ServerConfig{
		Key: testKey, Detector: det, Store: followerStore, Logf: t.Logf,
		Follower: true,
	})
	if err != nil {
		t.Fatalf("NewServer follower: %v", err)
	}
	follower, err := StartFollower(FollowerConfig{
		Store:        followerStore,
		Key:          testKey,
		LeaderAddr:   replAddr,
		Logf:         t.Logf,
		OnApply:      followerSrv.ApplyReplicatedOp,
		OnSnapshot:   func(int) { followerSrv.ReloadFromStore() },
		OnLeaderAddr: followerSrv.SetLeaderAddr,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	followerAddr, err := followerSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start follower: %v", err)
	}
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	if !reflect.DeepEqual(leaderStore.Population(), followerStore.Population()) {
		t.Fatalf("populations diverged after convergence")
	}

	// The leader sees the follower's progress: lag drains to zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := leader.Status()
		if len(st.Followers) == 1 && st.Followers[0].Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never saw the follower drain: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The follower serves reads and bounces writes to the leader.
	followerClient, err := transport.NewClient(transport.ClientConfig{Addr: followerAddr.String(), Key: testKey})
	if err != nil {
		t.Fatalf("NewClient follower: %v", err)
	}
	if bundle, version, err := followerClient.FetchModel("user-00", 0); err != nil {
		t.Fatalf("follower FetchModel: %v", err)
	} else if version != 1 || bundle == nil {
		t.Fatalf("follower served model version %d (bundle nil: %v), want 1", version, bundle == nil)
	}
	leaderDec, err := leaderClient.Authenticate("user-00", byUser["user-00"][0])
	if err != nil {
		t.Fatalf("leader Authenticate: %v", err)
	}
	followerDec, err := followerClient.Authenticate("user-00", byUser["user-00"][0])
	if err != nil {
		t.Fatalf("follower Authenticate: %v", err)
	}
	if !reflect.DeepEqual(leaderDec, followerDec) {
		t.Fatalf("authenticate decisions diverged: leader %+v follower %+v", leaderDec, followerDec)
	}
	var redirect *transport.RedirectError
	if _, err := followerClient.Enroll("user-00", byUser["user-00"][:1]); !errors.As(err, &redirect) {
		t.Fatalf("follower enroll err = %v, want RedirectError", err)
	} else if redirect.Leader != leaderClientAddr.String() {
		t.Fatalf("redirect to %q, want %q (learned from welcome)", redirect.Leader, leaderClientAddr)
	}

	// Kill the leader, promote the follower, and keep writing: sequence
	// numbers must continue each shard's space monotonically.
	before := followerStore.ShardLastSeqs()
	if err := leader.Close(); err != nil {
		t.Fatalf("leader.Close: %v", err)
	}
	if err := leaderSrv.Close(); err != nil {
		t.Fatalf("leaderSrv.Close: %v", err)
	}
	if err := leaderStore.Close(); err != nil {
		t.Fatalf("leaderStore.Close: %v", err)
	}
	follower.Promote()
	followerSrv.Promote()
	if st := follower.Status(); st.Role != "leader" || st.Connected {
		t.Fatalf("promoted follower status = %+v", st)
	}

	for i := 0; i < 6; i++ {
		if _, err := followerClient.Enroll("user-new", fakeSamples("user-new", 2, float64(i))); err != nil {
			t.Fatalf("promoted enroll %d: %v", i, err)
		}
	}
	after := followerStore.ShardLastSeqs()
	var grew bool
	for i := range after {
		if after[i] < before[i] {
			t.Fatalf("shard %d sequence went backwards: %d -> %d", i, before[i], after[i])
		}
		if after[i] > before[i] {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("promoted enrollments did not advance any shard cursor: %v -> %v", before, after)
	}
	if _, version, err := followerClient.TrainVersioned("user-00", transport.TrainParams{Seed: 1}); err != nil {
		t.Fatalf("promoted TrainVersioned: %v", err)
	} else if version != 2 {
		t.Fatalf("promoted train published version %d, want 2 (registry continued)", version)
	}

	if err := follower.Close(); err != nil {
		t.Fatalf("follower.Close: %v", err)
	}
	if err := followerSrv.Close(); err != nil {
		t.Fatalf("followerSrv.Close: %v", err)
	}
	if err := followerStore.Close(); err != nil {
		t.Fatalf("followerStore.Close: %v", err)
	}
}

// TestFollowerSnapshotCatchUp forces the snapshot path: the leader's log
// is compacted before the follower connects, so record replay is
// impossible and the shard ships its snapshot instead.
func TestFollowerSnapshotCatchUp(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{SnapshotEvery: -1})
	defer func() { _ = leaderStore.Close() }()
	for i := 0; i < 10; i++ {
		if err := leaderStore.Enroll("anon-snap", fakeSamples("anon-snap", 3, float64(i)), false); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}
	// Compact: every record is folded into the snapshot and deleted.
	if err := leaderStore.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	followerStore := openStore(t, t.TempDir(), store.Options{SnapshotEvery: -1})
	defer func() { _ = followerStore.Close() }()
	var snapshots atomic.Int64
	follower, err := StartFollower(FollowerConfig{
		Store:      followerStore,
		Key:        testKey,
		LeaderAddr: replAddr,
		Logf:       t.Logf,
		OnSnapshot: func(int) { snapshots.Add(1) },
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer func() { _ = follower.Close() }()

	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	if snapshots.Load() == 0 {
		t.Fatalf("catch-up used no snapshot despite a compacted log")
	}
	if !reflect.DeepEqual(leaderStore.Population(), followerStore.Population()) {
		t.Fatalf("populations diverged after snapshot catch-up")
	}

	// The stream then resumes live records on top of the snapshot.
	if err := leaderStore.Enroll("anon-live", fakeSamples("anon-live", 2, 50), false); err != nil {
		t.Fatalf("Enroll live: %v", err)
	}
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	if !reflect.DeepEqual(leaderStore.Population(), followerStore.Population()) {
		t.Fatalf("populations diverged after post-snapshot records")
	}
}

// TestReplicationHammer drives concurrent enrollments while a cold
// follower catches up and tails — the -race exercise for the
// subscribe-before-scan overlap and the per-connection queues.
func TestReplicationHammer(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{Shards: 4, NoSync: true})
	defer func() { _ = leaderStore.Close() }()
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	const writers, perWriter = 4, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				user := []string{"anon-h0", "anon-h1", "anon-h2", "anon-h3", "anon-h4", "anon-h5"}[(w+i)%6]
				if err := leaderStore.Enroll(user, fakeSamples(user, 1, float64(w*1000+i)), false); err != nil {
					t.Errorf("Enroll: %v", err)
					return
				}
			}
		}(w)
	}

	// Connect mid-hammer: the follower must catch up from disk while the
	// live stream races ahead.
	followerStore := openStore(t, t.TempDir(), store.Options{Shards: 4, NoSync: true})
	defer func() { _ = followerStore.Close() }()
	follower, err := StartFollower(FollowerConfig{
		Store:      followerStore,
		Key:        testKey,
		LeaderAddr: replAddr,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer func() { _ = follower.Close() }()

	wg.Wait()
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())
	leaderPop, followerPop := leaderStore.Population(), followerStore.Population()
	if !reflect.DeepEqual(leaderPop, followerPop) {
		t.Fatalf("populations diverged: leader %d users, follower %d users", len(leaderPop), len(followerPop))
	}
	var total int
	for _, samples := range followerPop {
		total += len(samples)
	}
	if want := writers * perWriter; total != want {
		t.Fatalf("follower holds %d windows, want %d (duplicates or losses)", total, want)
	}
}

// TestFollowerRejectsWrongKey ensures the HMAC handshake gates the
// stream both ways.
func TestFollowerRejectsWrongKey(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{})
	defer func() { _ = leaderStore.Close() }()
	if err := leaderStore.Enroll("anon-k", fakeSamples("anon-k", 1, 0), false); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	followerStore := openStore(t, t.TempDir(), store.Options{})
	defer func() { _ = followerStore.Close() }()
	follower, err := StartFollower(FollowerConfig{
		Store:       followerStore,
		Key:         []byte("not-the-key"),
		LeaderAddr:  replAddr,
		Logf:        t.Logf,
		RedialDelay: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	defer func() { _ = follower.Close() }()

	time.Sleep(300 * time.Millisecond)
	if got := followerStore.ShardLastSeqs()[0]; got != 0 {
		t.Fatalf("wrong-key follower replicated %d records", got)
	}
	if follower.Status().Connected {
		t.Fatalf("wrong-key follower reports connected")
	}
}
