package replication

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smarteryou/internal/cas"
	"smarteryou/internal/store"
)

// LeaderConfig configures the leader side of replication.
type LeaderConfig struct {
	// Store is the leader's durable store; required.
	Store *store.Store
	// Key is the pre-shared HMAC key followers must present; required.
	Key []byte
	// AdvertiseAddr is the leader's client-facing address, sent to
	// followers so their read-only servers can redirect writes here.
	AdvertiseAddr string
	// Logf receives leader logs; nil discards them.
	Logf func(format string, args ...any)
	// QueueDepth bounds each follower's live-record queue (default
	// 8192); a follower that falls further behind than the queue holds
	// is disconnected and catches up on reconnect.
	QueueDepth int
	// ShardFilter, when set, restricts what this leader streams: only
	// records and backlog for shards the filter accepts are sent. In a
	// full-mesh cluster every node is a leader and every record would
	// otherwise be re-forwarded by each peer that applied it — n·(n-1)
	// frames per write instead of n-1. Filtering to owned shards keeps
	// exactly one forwarder per record (its owner, which has the shard's
	// full history). The filter is consulted per record, so ownership
	// changes take effect live; followers that lose an in-flight range to
	// a filter flip see a sequence gap, reconnect, and catch up from the
	// new owner's backlog. Nil forwards everything (single-leader
	// topology).
	ShardFilter func(shard int) bool
}

// Leader streams the store's WAL to connected followers. Create with
// NewLeader, start with Serve, stop with Close.
type Leader struct {
	st     *store.Store
	key    []byte
	adv    string
	logf   func(format string, args ...any)
	depth  int
	filter func(shard int) bool

	mu    sync.Mutex
	conns map[*leaderConn]struct{}

	// Catch-up byte accounting across all follower sessions: full
	// snapshot bytes shipped, delta bytes shipped, and delta bytes
	// *avoided* because the follower already held the chunks.
	fullBytes       atomic.Uint64
	deltaBytes      atomic.Uint64
	deltaSavedBytes atomic.Uint64

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// outRec is one live record queued for a follower.
type outRec struct {
	shard   int
	seq     uint64
	payload []byte
}

// leaderConn is the leader's state for one connected follower.
type leaderConn struct {
	conn net.Conn
	out  chan outRec
	// version is the protocol version from the follower's hello; delta
	// catch-up needs >= 2.
	version int
	// declared tracks the chunk hashes the follower holds: seeded from
	// its hello, extended by every chunk this session ships. Only the
	// session goroutine touches it.
	declared map[cas.Hash]struct{}
	// dead is closed when the connection must be torn down (queue
	// overflow, read error, leader shutdown).
	dead     chan struct{}
	deadOnce sync.Once

	mu    sync.Mutex
	acked []uint64
}

// markDead tears the connection down exactly once; the blocked writer
// and reader unblock via the closed socket.
func (fc *leaderConn) markDead() {
	fc.deadOnce.Do(func() {
		close(fc.dead)
		_ = fc.conn.Close()
	})
}

// push enqueues a live record without blocking: the sink runs under a
// store shard's lock, so a slow follower must never stall an enroll.
func (fc *leaderConn) push(shard int, seq uint64, payload []byte) {
	select {
	case fc.out <- outRec{shard: shard, seq: seq, payload: payload}:
	case <-fc.dead:
	default:
		// Queue overflow: this follower is too far behind to tail live.
		// Drop the connection; it will reconnect and catch up from the
		// log (or a snapshot).
		fc.markDead()
	}
}

// NewLeader builds a leader over an open store.
func NewLeader(cfg LeaderConfig) (*Leader, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("replication: leader needs a store")
	}
	if len(cfg.Key) == 0 {
		return nil, fmt.Errorf("replication: leader needs an HMAC key")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	return &Leader{
		st:     cfg.Store,
		key:    cfg.Key,
		adv:    cfg.AdvertiseAddr,
		logf:   logf,
		depth:  depth,
		filter: cfg.ShardFilter,
		conns:  make(map[*leaderConn]struct{}),
		closed: make(chan struct{}),
	}, nil
}

// Serve starts the replication listener on addr (e.g. "127.0.0.1:0")
// and accepts followers until Close. It returns the bound address.
func (l *Leader) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("replication: listen: %w", err)
	}
	return l.ServeListener(ln)
}

// ServeListener is Serve over an already-bound listener — cluster
// bring-up binds every port first so the shard map can carry final
// addresses before any node starts.
func (l *Leader) ServeListener(ln net.Listener) (net.Addr, error) {
	l.ln = ln
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-l.closed:
				default:
					l.logf("replication accept: %v", err)
				}
				return
			}
			l.wg.Add(1)
			go func() {
				defer l.wg.Done()
				l.handle(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener and tears down every follower stream.
func (l *Leader) Close() error {
	close(l.closed)
	var err error
	if l.ln != nil {
		err = l.ln.Close()
	}
	l.mu.Lock()
	for fc := range l.conns {
		fc.markDead()
	}
	l.mu.Unlock()
	l.wg.Wait()
	return err
}

// Status reports the leader's cursors and each follower's progress.
func (l *Leader) Status() Status {
	lead := l.st.ShardLastSeqs()
	st := Status{
		Role:                   "leader",
		ShardSeqs:              lead,
		CatchupFullBytes:       l.fullBytes.Load(),
		CatchupDeltaBytes:      l.deltaBytes.Load(),
		CatchupDeltaSavedBytes: l.deltaSavedBytes.Load(),
	}
	l.mu.Lock()
	for fc := range l.conns {
		fc.mu.Lock()
		acked := append([]uint64(nil), fc.acked...)
		fc.mu.Unlock()
		st.Followers = append(st.Followers, FollowerProgress{
			Addr:  fc.conn.RemoteAddr().String(),
			Acked: acked,
			Lag:   lagBetween(lead, acked),
		})
	}
	l.mu.Unlock()
	return st
}

// handle runs one follower session: handshake, catch-up, live tail.
func (l *Leader) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	remote := conn.RemoteAddr().String()

	_ = conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	payload, err := readWireFrame(conn)
	if err != nil {
		l.logf("replication %s: read hello: %v", remote, err)
		return
	}
	hello, err := decodeHello(payload, l.key)
	if err != nil {
		l.logf("replication %s: %v", remote, err)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	shards := l.st.ShardCount()
	if err := checkShardCounts(shards, len(hello.seqs)); err != nil {
		l.logf("replication %s: %v", remote, err)
		_ = writeWireFrame(conn, encodeErrorFrame(err.Error()))
		return
	}

	fc := &leaderConn{
		conn:     conn,
		out:      make(chan outRec, l.depth),
		version:  hello.version,
		declared: make(map[cas.Hash]struct{}, len(hello.hashes)),
		dead:     make(chan struct{}),
		acked:    append([]uint64(nil), hello.seqs...),
	}
	for _, h := range hello.hashes {
		fc.declared[h] = struct{}{}
	}
	l.mu.Lock()
	l.conns[fc] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.conns, fc)
		l.mu.Unlock()
	}()

	// Subscribe before reading cursors: anything appended from here on
	// is queued, so the disk catch-up below plus the queue covers the
	// whole log with overlap (deduplicated by sequence number), never a
	// gap. The shard filter drops rejected records at the queue door —
	// consulted per record, so an ownership change takes effect on the
	// very next append.
	sink := fc.push
	if l.filter != nil {
		sink = func(shard int, seq uint64, payload []byte) {
			if l.filter(shard) {
				fc.push(shard, seq, payload)
			}
		}
	}
	cancel := l.st.SubscribeReplication(sink)
	defer cancel()

	// All writes to this follower (welcome, backlog, snapshots, live
	// tail) happen from this goroutine, buffered: under load many small
	// record frames coalesce into one segment, and the stream loop
	// flushes whenever its queue goes momentarily idle.
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := writeWireFrame(bw, encodeWelcome(welcomeFrame{
		version:    1,
		clientAddr: l.adv,
		seqs:       l.st.ShardLastSeqs(),
	}, l.key)); err != nil {
		l.logf("replication %s: write welcome: %v", remote, err)
		return
	}
	if err := bw.Flush(); err != nil {
		l.logf("replication %s: write welcome: %v", remote, err)
		return
	}

	// Reader side: acknowledgements drive the lag accounting. Buffered —
	// followers coalesce acks under load, so several often arrive in one
	// segment.
	go func() {
		defer fc.markDead()
		br := bufio.NewReaderSize(conn, 16<<10)
		for {
			payload, err := readWireFrame(br)
			if err != nil {
				return
			}
			ack, err := decodeAck(payload)
			if err != nil || ack.shard < 0 || ack.shard >= shards {
				l.logf("replication %s: bad ack: %v", remote, err)
				return
			}
			fc.mu.Lock()
			if ack.seq > fc.acked[ack.shard] {
				fc.acked[ack.shard] = ack.seq
			}
			fc.mu.Unlock()
		}
	}()

	sent := append([]uint64(nil), hello.seqs...)
	if err := l.catchUp(fc, bw, sent); err != nil {
		l.logf("replication %s: catch-up: %v", remote, err)
		fc.markDead()
		return
	}
	if err := bw.Flush(); err != nil {
		l.logf("replication %s: catch-up: %v", remote, err)
		fc.markDead()
		return
	}
	l.logf("replication %s: follower caught up to %v, tailing", remote, sent)
	l.stream(fc, bw, sent)
}

// catchUp brings one follower to the leader's durable state per shard:
// log records when they are still on disk, a streamed snapshot when they
// were compacted away. sent is updated to the cursor reached per shard.
func (l *Leader) catchUp(fc *leaderConn, bw *bufio.Writer, sent []uint64) error {
	for shard := range sent {
		if l.filter != nil && !l.filter(shard) {
			continue // not this leader's shard; its owner serves the backlog
		}
		for attempt := 0; ; attempt++ {
			recs, err := l.st.ShardRecordsSince(shard, sent[shard])
			if err == nil {
				for _, r := range recs {
					if err := writeWireFrame(bw, encodeRecordFrame(recordFrame{shard: shard, payload: r.Payload})); err != nil {
						return err
					}
					sent[shard] = r.Seq
				}
				break
			}
			if !errors.Is(err, store.ErrCompacted) || attempt >= 3 {
				return err
			}
			// The follower's cursor predates the oldest log record: ship
			// the shard's state (copy-on-write view; appends continue) and
			// retry the log tail from the shipped cursor. Version-2
			// followers get a delta — the snapshot body plus only the
			// chunks they don't hold; older ones get the full snapshot.
			var lastSeq uint64
			if fc.version >= 2 {
				lastSeq, err = l.sendDelta(fc, bw, shard, sent[shard])
			} else {
				lastSeq, err = l.sendFullSnapshot(bw, shard, sent[shard])
			}
			if err != nil {
				return err
			}
			sent[shard] = lastSeq
		}
	}
	return nil
}

// sendFullSnapshot encodes and streams one full shard snapshot in
// bounded chunks, returning the cursor it covers.
func (l *Leader) sendFullSnapshot(bw *bufio.Writer, shard int, cursor uint64) (uint64, error) {
	data, lastSeq, err := l.st.ShardSnapshotBytes(shard)
	if err != nil {
		return 0, err
	}
	if lastSeq <= cursor {
		return 0, fmt.Errorf("replication: shard %d snapshot at %d does not cover cursor %d", shard, lastSeq, cursor)
	}
	l.fullBytes.Add(uint64(len(data)))
	for off := 0; ; off += snapshotChunkBytes {
		end := off + snapshotChunkBytes
		last := end >= len(data)
		if last {
			end = len(data)
		}
		chunk := snapshotChunk{shard: shard, last: last, data: data[off:end]}
		if last {
			chunk.lastSeq = lastSeq
		}
		if err := writeWireFrame(bw, encodeSnapshotChunk(chunk)); err != nil {
			return 0, err
		}
		if last {
			return lastSeq, nil
		}
	}
}

// sendDelta ships one shard's content-addressed snapshot body plus only
// the chunks the follower has not declared, in batches cut near
// snapshotChunkBytes. Every shipped chunk joins the declared set — the
// follower's CAS is store-wide, so a chunk shipped for shard 0 need not
// ship again for shard 1.
func (l *Leader) sendDelta(fc *leaderConn, bw *bufio.Writer, shard int, cursor uint64) (uint64, error) {
	body, lastSeq, chunks, err := l.st.ShardDelta(shard)
	if err != nil {
		return 0, err
	}
	if lastSeq <= cursor {
		return 0, fmt.Errorf("replication: shard %d delta at %d does not cover cursor %d", shard, lastSeq, cursor)
	}
	if err := writeWireFrame(bw, encodeDeltaBody(deltaBody{shard: shard, data: body})); err != nil {
		return 0, err
	}
	sent := uint64(len(body))
	batch := deltaChunks{shard: shard}
	batchBytes := 0
	flush := func() error {
		if len(batch.hashes) == 0 {
			return nil
		}
		if err := writeWireFrame(bw, encodeDeltaChunks(batch)); err != nil {
			return err
		}
		batch.hashes = batch.hashes[:0]
		batch.data = batch.data[:0]
		batchBytes = 0
		return nil
	}
	for h, data := range chunks {
		if _, ok := fc.declared[h]; ok {
			l.deltaSavedBytes.Add(uint64(len(data)))
			continue
		}
		fc.declared[h] = struct{}{}
		batch.hashes = append(batch.hashes, h)
		batch.data = append(batch.data, data)
		batchBytes += cas.HashSize + len(data)
		sent += uint64(cas.HashSize + len(data))
		if batchBytes >= snapshotChunkBytes {
			if err := flush(); err != nil {
				return 0, err
			}
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	if err := writeWireFrame(bw, encodeDeltaDone(deltaDone{shard: shard, lastSeq: lastSeq})); err != nil {
		return 0, err
	}
	l.deltaBytes.Add(sent)
	return lastSeq, nil
}

// stream forwards live records until the connection dies or the leader
// closes. Records at or below the already-sent cursor (duplicates from
// the catch-up overlap) are skipped. Each wakeup drains everything the
// queue already holds into the buffered writer and flushes once — under
// load dozens of records ride one syscall, while an isolated record
// still goes out immediately.
func (l *Leader) stream(fc *leaderConn, bw *bufio.Writer, sent []uint64) {
	send := func(r outRec) bool {
		if r.seq <= sent[r.shard] {
			return true
		}
		if err := writeWireFrame(bw, encodeRecordFrame(recordFrame{shard: r.shard, payload: r.payload})); err != nil {
			return false
		}
		sent[r.shard] = r.seq
		return true
	}
	for {
		select {
		case r := <-fc.out:
			if !send(r) {
				fc.markDead()
				return
			}
			for drained := false; !drained; {
				select {
				case r := <-fc.out:
					if !send(r) {
						fc.markDead()
						return
					}
				default:
					drained = true
				}
			}
			if err := bw.Flush(); err != nil {
				fc.markDead()
				return
			}
		case <-fc.dead:
			return
		case <-l.closed:
			fc.markDead()
			return
		}
	}
}
