package replication

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"smarteryou/internal/store"
)

// TestFollowerCrashRestartMidStream kills a follower mid-stream, tears
// the tail of its WAL (the bytes a crash mid-append leaves behind),
// reopens the store, and reconnects: recovery must truncate the torn
// frame, the stream must resume from the last durable sequence, and the
// converged follower must hold exactly the leader's records — no
// duplicates, no gaps.
func TestFollowerCrashRestartMidStream(t *testing.T) {
	leaderStore := openStore(t, t.TempDir(), store.Options{SnapshotEvery: -1})
	defer func() { _ = leaderStore.Close() }()
	leader, replAddr := startLeader(t, leaderStore, "")
	defer func() { _ = leader.Close() }()

	for i := 0; i < 8; i++ {
		if err := leaderStore.Enroll("anon-c", fakeSamples("anon-c", 2, float64(i)), false); err != nil {
			t.Fatalf("Enroll: %v", err)
		}
	}

	followerDir := t.TempDir()
	followerStore := openStore(t, followerDir, store.Options{SnapshotEvery: -1})
	follower, err := StartFollower(FollowerConfig{
		Store:      followerStore,
		Key:        testKey,
		LeaderAddr: replAddr,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	waitConverged(t, followerStore, leaderStore.ShardLastSeqs())

	// Crash: stop the stream, close the store, and tear the WAL tail the
	// way a mid-append power cut would — a frame header that promises more
	// bytes than follow.
	if err := follower.Close(); err != nil {
		t.Fatalf("follower.Close: %v", err)
	}
	if err := followerStore.Close(); err != nil {
		t.Fatalf("followerStore.Close: %v", err)
	}
	walPath := filepath.Join(followerDir, "wal.log")
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	torn := append([]byte(nil), intact...)
	torn = append(torn, 0x00, 0x00, 0x10, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02)
	if err := os.WriteFile(walPath, torn, 0o644); err != nil {
		t.Fatalf("write torn wal: %v", err)
	}

	// The leader keeps appending while the follower is down.
	seqsAtCrash := leaderStore.ShardLastSeqs()
	for i := 0; i < 5; i++ {
		if err := leaderStore.Enroll("anon-c2", fakeSamples("anon-c2", 1, 100+float64(i)), false); err != nil {
			t.Fatalf("Enroll while down: %v", err)
		}
	}

	// Restart: recovery drops the torn bytes and the durable cursor is
	// exactly where the crash left it.
	reopened := openStore(t, followerDir, store.Options{SnapshotEvery: -1})
	defer func() { _ = reopened.Close() }()
	if got := reopened.Stats().Recovery.TruncatedBytes; got == 0 {
		t.Fatalf("recovery truncated no bytes from the torn wal")
	}
	if got := reopened.ShardLastSeqs(); !reflect.DeepEqual(got, seqsAtCrash) {
		t.Fatalf("cursor after torn-tail recovery: %v, want %v", got, seqsAtCrash)
	}

	// Track the sequences delivered on reconnect: the resumed stream must
	// start after the durable cursor, not replay from zero.
	var (
		mu      sync.Mutex
		applied []uint64
	)
	restarted, err := StartFollower(FollowerConfig{
		Store:      reopened,
		Key:        testKey,
		LeaderAddr: replAddr,
		Logf:       t.Logf,
		OnApply: func(op store.ReplicatedOp) {
			mu.Lock()
			applied = append(applied, op.Seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("StartFollower restart: %v", err)
	}
	waitConverged(t, reopened, leaderStore.ShardLastSeqs())
	// Stopping the follower joins the stream goroutine, so the OnApply
	// slice is quiescent before the assertions read it.
	if err := restarted.Close(); err != nil {
		t.Fatalf("restarted.Close: %v", err)
	}

	if len(applied) != 5 {
		t.Fatalf("restart applied %d records (%v), want exactly the 5 missed ones", len(applied), applied)
	}
	for i, seq := range applied {
		if want := seqsAtCrash[0] + uint64(i+1); seq != want {
			t.Fatalf("resume sequence %d is %d, want %d (duplicate or gap)", i, seq, want)
		}
	}
	if !reflect.DeepEqual(leaderStore.Population(), reopened.Population()) {
		t.Fatalf("populations diverged after crash-restart")
	}
	var total int
	for _, samples := range reopened.Population() {
		total += len(samples)
	}
	if want := 8*2 + 5; total != want {
		t.Fatalf("follower holds %d windows after restart, want %d", total, want)
	}
}
