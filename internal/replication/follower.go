package replication

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"smarteryou/internal/cas"
	"smarteryou/internal/store"
)

// FollowerConfig configures the follower side of replication.
type FollowerConfig struct {
	// Store is the follower's local store; required. It must have the
	// same shard count as the leader's.
	Store *store.Store
	// Key is the pre-shared HMAC key; required.
	Key []byte
	// LeaderAddr is the leader's replication listener address; required.
	LeaderAddr string
	// Logf receives follower logs; nil discards them.
	Logf func(format string, args ...any)
	// OnApply, when set, observes every replicated operation after it is
	// durable locally — the read-only server uses it to keep caches in
	// step. Called from the replication goroutine.
	OnApply func(op store.ReplicatedOp)
	// OnSnapshot, when set, observes each installed shard snapshot (the
	// shard's state was wholesale replaced, not incrementally mutated).
	OnSnapshot func(shard int)
	// OnLeaderAddr, when set, receives the leader's advertised
	// client-facing address from each welcome frame.
	OnLeaderAddr func(addr string)
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RedialDelay spaces reconnection attempts (default 250ms).
	RedialDelay time.Duration
	// DisableDelta forces protocol version 1: catch-up past a compacted
	// log ships full snapshots instead of chunk deltas. For benchmarking
	// the two paths against each other and as an escape hatch.
	DisableDelta bool
}

// Follower maintains a replication stream from a leader, applying
// records into the local store and reconnecting on any failure. Create
// with StartFollower; stop with Close or hand the store over with
// Promote.
type Follower struct {
	cfg  FollowerConfig
	logf func(format string, args ...any)

	connected atomic.Bool
	promoted  atomic.Bool

	mu         sync.Mutex
	conn       net.Conn
	leaderAddr string
	stopped    bool

	done chan struct{}
	wg   sync.WaitGroup
}

// StartFollower validates the config and starts the replication loop.
func StartFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("replication: follower needs a store")
	}
	if len(cfg.Key) == 0 {
		return nil, fmt.Errorf("replication: follower needs an HMAC key")
	}
	if cfg.LeaderAddr == "" {
		return nil, fmt.Errorf("replication: follower needs a leader address")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialTimeout
	}
	if cfg.RedialDelay <= 0 {
		cfg.RedialDelay = defaultRedialDelay
	}
	f := &Follower{cfg: cfg, logf: cfg.Logf, done: make(chan struct{})}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.run()
	}()
	return f, nil
}

// Close stops the replication loop and closes the stream. The store is
// left open for the caller.
func (f *Follower) Close() error {
	f.stop()
	f.wg.Wait()
	return nil
}

// Promote stops replicating and marks this endpoint a leader: the store
// keeps the leader-assigned sequence numbers, so new local writes
// continue each shard's sequence space monotonically.
func (f *Follower) Promote() {
	f.promoted.Store(true)
	f.stop()
	f.wg.Wait()
}

// stop shuts the loop down idempotently.
func (f *Follower) stop() {
	f.mu.Lock()
	if !f.stopped {
		f.stopped = true
		close(f.done)
	}
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
}

// Status reports the stream state and the local cursors.
func (f *Follower) Status() Status {
	st := Status{
		Role:      "follower",
		Connected: f.connected.Load(),
		ShardSeqs: f.cfg.Store.ShardLastSeqs(),
	}
	if f.promoted.Load() {
		st.Role = "leader"
		st.Connected = false
	}
	f.mu.Lock()
	st.LeaderAddr = f.leaderAddr
	f.mu.Unlock()
	return st
}

// run dials, streams, and redials until stopped.
func (f *Follower) run() {
	for {
		select {
		case <-f.done:
			return
		default:
		}
		if err := f.session(); err != nil {
			select {
			case <-f.done:
				return
			default:
				f.logf("replication follower: %v (reconnecting in %v)", err, f.cfg.RedialDelay)
			}
		}
		select {
		case <-f.done:
			return
		case <-time.After(f.cfg.RedialDelay):
		}
	}
}

// session runs one connection lifetime: handshake, then apply frames
// until an error. Every return path leaves the durable cursors intact,
// so the next session resumes exactly where this one stopped.
func (f *Follower) session() (err error) {
	conn, err := net.DialTimeout("tcp", f.cfg.LeaderAddr, f.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("dial %s: %w", f.cfg.LeaderAddr, err)
	}
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.connected.Store(false)
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		_ = conn.Close()
	}()

	st := f.cfg.Store
	cursors := st.ShardLastSeqs()
	// Buffer both directions: record frames arrive many to a segment
	// from the leader's batched writer, and acks are flushed only when
	// the read side goes idle, so a burst of applies costs one ack
	// syscall instead of one per record.
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := helloFrame{version: 2, seqs: cursors}
	if f.cfg.DisableDelta {
		hello.version = 1
	} else {
		// Declare the chunks already on hand so a delta catch-up ships
		// only what's missing.
		hello.hashes = st.CASHashes()
	}
	if err := writeWireFrame(conn, encodeHello(hello, f.cfg.Key)); err != nil {
		return fmt.Errorf("send hello: %w", err)
	}
	payload, err := readWireFrame(br)
	if err != nil {
		return fmt.Errorf("read welcome: %w", err)
	}
	if payload[0] == frameError {
		msg, _ := decodeErrorFrame(payload)
		return fmt.Errorf("leader refused: %s", msg)
	}
	welcome, err := decodeWelcome(payload, f.cfg.Key)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline(time.Time{})
	if err := checkShardCounts(st.ShardCount(), len(welcome.seqs)); err != nil {
		return err
	}
	if welcome.clientAddr != "" {
		f.mu.Lock()
		f.leaderAddr = welcome.clientAddr
		f.mu.Unlock()
		if f.cfg.OnLeaderAddr != nil {
			f.cfg.OnLeaderAddr(welcome.clientAddr)
		}
	}
	f.connected.Store(true)
	f.logf("replication follower: connected to %s at cursors %v (leader at %v)",
		f.cfg.LeaderAddr, cursors, welcome.seqs)

	// Partial snapshot bytes per shard while chunks stream in, and the
	// in-flight delta state (body + shipped chunk payloads) per shard.
	pending := make(map[int][]byte)
	deltaBodies := make(map[int][]byte)
	deltaData := make(map[int]map[cas.Hash][]byte)
	for {
		// Flush pending acks only when about to block: the leader never
		// waits on acks (they feed lag accounting), so holding them while
		// buffered frames remain is free, and an idle stream still acks
		// promptly.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("flush acks: %w", err)
			}
		}
		payload, err := readWireFrame(br)
		if err != nil {
			return fmt.Errorf("read frame: %w", err)
		}
		switch payload[0] {
		case frameRecord:
			rf, err := decodeRecordFrame(payload)
			if err != nil {
				return err
			}
			if rf.shard < 0 || rf.shard >= len(cursors) {
				return fmt.Errorf("record for shard %d of %d", rf.shard, len(cursors))
			}
			op, applied, err := st.ApplyReplicated(rf.shard, rf.payload)
			if err != nil {
				return fmt.Errorf("apply shard %d: %w", rf.shard, err)
			}
			if applied {
				cursors[rf.shard] = op.Seq
				if f.cfg.OnApply != nil {
					f.cfg.OnApply(op)
				}
			}
			// Ack the durable cursor either way: a duplicate means the
			// leader replayed overlap we already hold.
			if err := writeWireFrame(bw, encodeAck(ackFrame{shard: rf.shard, seq: cursors[rf.shard]})); err != nil {
				return fmt.Errorf("send ack: %w", err)
			}
		case frameSnapshot:
			chunk, err := decodeSnapshotChunk(payload)
			if err != nil {
				return err
			}
			if chunk.shard < 0 || chunk.shard >= len(cursors) {
				return fmt.Errorf("snapshot for shard %d of %d", chunk.shard, len(cursors))
			}
			pending[chunk.shard] = append(pending[chunk.shard], chunk.data...)
			if !chunk.last {
				continue
			}
			data := pending[chunk.shard]
			delete(pending, chunk.shard)
			lastSeq, err := st.InstallShardSnapshot(chunk.shard, data)
			if err != nil {
				return fmt.Errorf("install shard %d snapshot: %w", chunk.shard, err)
			}
			cursors[chunk.shard] = lastSeq
			f.logf("replication follower: installed shard %d snapshot (%d bytes) at seq %d",
				chunk.shard, len(data), lastSeq)
			if f.cfg.OnSnapshot != nil {
				f.cfg.OnSnapshot(chunk.shard)
			}
			if err := writeWireFrame(bw, encodeAck(ackFrame{shard: chunk.shard, seq: lastSeq})); err != nil {
				return fmt.Errorf("send ack: %w", err)
			}
		case frameDeltaBody:
			d, err := decodeDeltaBody(payload)
			if err != nil {
				return err
			}
			if d.shard < 0 || d.shard >= len(cursors) {
				return fmt.Errorf("delta for shard %d of %d", d.shard, len(cursors))
			}
			deltaBodies[d.shard] = append([]byte(nil), d.data...)
		case frameDeltaChunks:
			d, err := decodeDeltaChunks(payload)
			if err != nil {
				return err
			}
			if d.shard < 0 || d.shard >= len(cursors) {
				return fmt.Errorf("delta chunks for shard %d of %d", d.shard, len(cursors))
			}
			m := deltaData[d.shard]
			if m == nil {
				m = make(map[cas.Hash][]byte)
				deltaData[d.shard] = m
			}
			for i, h := range d.hashes {
				m[h] = append([]byte(nil), d.data[i]...)
			}
		case frameDeltaDone:
			d, err := decodeDeltaDone(payload)
			if err != nil {
				return err
			}
			if d.shard < 0 || d.shard >= len(cursors) {
				return fmt.Errorf("delta done for shard %d of %d", d.shard, len(cursors))
			}
			body := deltaBodies[d.shard]
			if body == nil {
				return fmt.Errorf("delta done for shard %d without a body", d.shard)
			}
			chunks := deltaData[d.shard]
			delete(deltaBodies, d.shard)
			delete(deltaData, d.shard)
			lastSeq, err := st.InstallShardDelta(d.shard, body, chunks)
			if err != nil {
				return fmt.Errorf("install shard %d delta: %w", d.shard, err)
			}
			if lastSeq != d.lastSeq {
				return fmt.Errorf("shard %d delta installed at seq %d, leader said %d", d.shard, lastSeq, d.lastSeq)
			}
			cursors[d.shard] = lastSeq
			shipped := 0
			for _, c := range chunks {
				shipped += len(c)
			}
			f.logf("replication follower: installed shard %d delta (%d body bytes, %d chunk bytes) at seq %d",
				d.shard, len(body), shipped, lastSeq)
			if f.cfg.OnSnapshot != nil {
				f.cfg.OnSnapshot(d.shard)
			}
			if err := writeWireFrame(bw, encodeAck(ackFrame{shard: d.shard, seq: lastSeq})); err != nil {
				return fmt.Errorf("send ack: %w", err)
			}
		case frameError:
			msg, _ := decodeErrorFrame(payload)
			return fmt.Errorf("leader error: %s", msg)
		default:
			return fmt.Errorf("unexpected frame type %#x", payload[0])
		}
	}
}
