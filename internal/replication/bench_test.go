package replication

import (
	"reflect"
	"testing"
	"time"

	"smarteryou/internal/store"
)

// BenchmarkFollowerCatchUp measures a cold follower converging on a
// seeded leader over the record-replay path: dial, handshake, replay the
// on-disk log, ack. Each iteration starts from an empty store, so the
// reported time is a full catch-up; the custom windows/sec metric is the
// headline recorded in BENCH_store.json.
func BenchmarkFollowerCatchUp(b *testing.B) {
	const enrolls, windowsPer = 64, 16
	leaderStore, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = leaderStore.Close() }()
	for i := 0; i < enrolls; i++ {
		user := []string{"anon-b0", "anon-b1", "anon-b2", "anon-b3"}[i%4]
		if err := leaderStore.Enroll(user, fakeSamples(user, windowsPer, float64(i)), false); err != nil {
			b.Fatal(err)
		}
	}
	leader, err := NewLeader(LeaderConfig{Store: leaderStore, Key: testKey})
	if err != nil {
		b.Fatal(err)
	}
	addr, err := leader.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = leader.Close() }()
	want := leaderStore.ShardLastSeqs()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		followerStore, err := store.Open(b.TempDir(), store.Options{SnapshotEvery: -1, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		follower, err := StartFollower(FollowerConfig{
			Store:      followerStore,
			Key:        testKey,
			LeaderAddr: addr.String(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for !reflect.DeepEqual(followerStore.ShardLastSeqs(), want) {
			time.Sleep(200 * time.Microsecond)
		}
		b.StopTimer()
		if err := follower.Close(); err != nil {
			b.Fatal(err)
		}
		if err := followerStore.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	totalWindows := float64(enrolls * windowsPer)
	b.ReportMetric(totalWindows*float64(b.N)/b.Elapsed().Seconds(), "windows/sec")
}
