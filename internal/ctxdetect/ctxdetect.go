// Package ctxdetect implements the user-agnostic context detection of
// Section V-E: a Random Forest trained on phone-only feature vectors
// (Eq. 3) from many users that classifies the current coarse usage context
// — stationary versus moving — before any user authentication happens.
//
// User-agnosticism is the load-bearing property: the detector for a given
// user is trained on *other* users' labelled data, so context can be
// detected for someone the system has never seen, prior to knowing who
// they are.
package ctxdetect

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"smarteryou/internal/features"
	"smarteryou/internal/ml"
	"smarteryou/internal/sensing"
)

// ErrNotTrained is returned when detection is attempted before training.
var ErrNotTrained = errors.New("ctxdetect: detector is not trained")

// LabeledVector is one training observation for the detector: a phone
// feature vector with its ground-truth coarse context, as recorded in the
// paper's controlled lab sessions (20 minutes per context per user).
type LabeledVector struct {
	Vector  []float64
	Context sensing.CoarseContext
}

// FromSamples converts collected window samples into labelled context
// training vectors (phone features only — Section V-E uses no smartwatch
// for context detection).
func FromSamples(samples []features.WindowSample) []LabeledVector {
	out := make([]LabeledVector, len(samples))
	for i, s := range samples {
		out[i] = LabeledVector{
			Vector:  s.Phone.AuthVector(),
			Context: s.Context.Coarse(),
		}
	}
	return out
}

// Detector is the trained user-agnostic context classifier.
type Detector struct {
	forest *ml.RandomForest
}

// Config tunes detector training.
type Config struct {
	// Trees is the forest size; 0 uses the package default (30).
	Trees int
	// Seed makes training deterministic.
	Seed int64
}

// Train fits the Random Forest on labelled vectors from (ideally many)
// users other than the one to be authenticated.
func Train(data []LabeledVector, cfg Config) (*Detector, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("ctxdetect: no training data")
	}
	x := make([][]float64, len(data))
	labels := make([]string, len(data))
	seen := map[string]struct{}{}
	for i, d := range data {
		x[i] = d.Vector
		labels[i] = d.Context.String()
		seen[labels[i]] = struct{}{}
	}
	if len(seen) < 2 {
		return nil, fmt.Errorf("ctxdetect: training data covers only %d context(s); need both", len(seen))
	}
	forest := ml.NewRandomForest()
	if cfg.Trees > 0 {
		forest.Trees = cfg.Trees
	}
	forest.Seed = cfg.Seed
	if err := forest.FitClasses(x, labels); err != nil {
		return nil, fmt.Errorf("ctxdetect: train forest: %w", err)
	}
	return &Detector{forest: forest}, nil
}

// Detection is a context decision with its ensemble confidence.
type Detection struct {
	Context sensing.CoarseContext
	// Confidence is the fraction of forest votes for the winning context.
	Confidence float64
}

// Detect classifies the coarse context of one phone feature window.
func (d *Detector) Detect(phone features.DeviceFeatures) (Detection, error) {
	vp := vecPool.Get().(*[]float64)
	v := phone.AppendAuthVector((*vp)[:0])
	det, err := d.DetectVector(v)
	*vp = v
	vecPool.Put(vp)
	return det, err
}

// vecPool recycles the 14-dim phone vectors Detect assembles; the forest
// only reads the vector during voting, so it never escapes a call.
var vecPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 14)
	return &s
}}

// DetectVector classifies a raw 14-dim phone vector.
func (d *Detector) DetectVector(vector []float64) (Detection, error) {
	if d == nil || d.forest == nil {
		return Detection{}, ErrNotTrained
	}
	votes, err := d.forest.Votes(vector)
	if err != nil {
		return Detection{}, fmt.Errorf("ctxdetect: %w", err)
	}
	total := 0
	bestLabel, bestVotes := "", -1
	for _, label := range d.forest.Labels() {
		v := votes[label]
		total += v
		if v > bestVotes {
			bestLabel, bestVotes = label, v
		}
	}
	ctx, err := parseCoarse(bestLabel)
	if err != nil {
		return Detection{}, err
	}
	conf := 0.0
	if total > 0 {
		conf = float64(bestVotes) / float64(total)
	}
	return Detection{Context: ctx, Confidence: conf}, nil
}

func parseCoarse(label string) (sensing.CoarseContext, error) {
	switch label {
	case sensing.CoarseStationary.String():
		return sensing.CoarseStationary, nil
	case sensing.CoarseMoving.String():
		return sensing.CoarseMoving, nil
	default:
		return 0, fmt.Errorf("ctxdetect: unknown context label %q", label)
	}
}

// detectorJSON is the wire form for model download (Section IV-A3: the
// context detection model is downloaded from the Authentication Server at
// enrollment).
type detectorJSON struct {
	Forest *ml.RandomForest `json:"forest"`
}

// MarshalJSON implements json.Marshaler.
func (d *Detector) MarshalJSON() ([]byte, error) {
	return json.Marshal(detectorJSON{Forest: d.forest})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Detector) UnmarshalJSON(data []byte) error {
	var m detectorJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("ctxdetect: decode detector: %w", err)
	}
	if m.Forest == nil {
		return fmt.Errorf("ctxdetect: decoded detector has no forest")
	}
	d.forest = m.Forest
	return nil
}
