package ctxdetect

import (
	"encoding/json"
	"errors"
	"testing"

	"smarteryou/internal/features"
	"smarteryou/internal/sensing"
)

// labData collects lab-style context training data from a few users.
func labData(t *testing.T, userIdx []int, seconds float64) []LabeledVector {
	t.Helper()
	pop, err := sensing.NewPopulation(8, 4242)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	var all []features.WindowSample
	for _, i := range userIdx {
		samples, err := features.Collect(pop.Users[i], features.CollectOptions{
			WindowSeconds:  6,
			SessionSeconds: seconds,
			Sessions:       1,
			Contexts:       sensing.AllContexts(),
			Seed:           int64(1000 + i),
		})
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		all = append(all, samples...)
	}
	return FromSamples(all)
}

func TestTrainAndDetectUserAgnostic(t *testing.T) {
	// Train on users 0-4, test on users 5-7 the detector never saw.
	train := labData(t, []int{0, 1, 2, 3, 4}, 60)
	test := labData(t, []int{5, 6, 7}, 60)

	det, err := Train(train, Config{Seed: 1})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	correct := 0
	for _, d := range test {
		got, err := det.DetectVector(d.Vector)
		if err != nil {
			t.Fatalf("DetectVector: %v", err)
		}
		if got.Context == d.Context {
			correct++
		}
		if got.Confidence < 0.5 || got.Confidence > 1 {
			t.Errorf("confidence %v outside (0.5, 1]", got.Confidence)
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.95 {
		t.Errorf("user-agnostic context accuracy = %v, want >= 0.95 (paper reports ~0.99)", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{}); err == nil {
		t.Errorf("empty training data should error")
	}
	onlyOne := []LabeledVector{
		{Vector: []float64{1, 2}, Context: sensing.CoarseMoving},
		{Vector: []float64{2, 3}, Context: sensing.CoarseMoving},
	}
	if _, err := Train(onlyOne, Config{}); err == nil {
		t.Errorf("single-context training data should error")
	}
}

func TestDetectUntrained(t *testing.T) {
	var d *Detector
	if _, err := d.DetectVector([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("nil detector err = %v, want ErrNotTrained", err)
	}
	d = &Detector{}
	if _, err := d.DetectVector([]float64{1}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("empty detector err = %v, want ErrNotTrained", err)
	}
}

func TestDetectorSerializationRoundTrip(t *testing.T) {
	train := labData(t, []int{0, 1}, 36)
	det, err := Train(train, Config{Trees: 10, Seed: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	blob, err := json.Marshal(det)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var restored Detector
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for _, d := range train[:20] {
		a, err1 := det.DetectVector(d.Vector)
		b, err2 := restored.DetectVector(d.Vector)
		if err1 != nil || err2 != nil {
			t.Fatalf("DetectVector: %v / %v", err1, err2)
		}
		if a.Context != b.Context {
			t.Fatalf("restored detector disagrees: %v vs %v", a.Context, b.Context)
		}
	}
}

func TestDetectorUnmarshalRejectsEmpty(t *testing.T) {
	var d Detector
	if err := json.Unmarshal([]byte(`{}`), &d); err == nil {
		t.Errorf("missing forest should fail to decode")
	}
	if err := json.Unmarshal([]byte(`garbage`), &d); err == nil {
		t.Errorf("invalid json should fail to decode")
	}
}

func TestFromSamplesMapsCoarse(t *testing.T) {
	samples := []features.WindowSample{
		{Context: sensing.ContextOnVehicle},
		{Context: sensing.ContextMovingUse},
	}
	labeled := FromSamples(samples)
	if labeled[0].Context != sensing.CoarseStationary {
		t.Errorf("vehicle should label as stationary")
	}
	if labeled[1].Context != sensing.CoarseMoving {
		t.Errorf("moving-use should label as moving")
	}
	if len(labeled[0].Vector) != 14 {
		t.Errorf("context vector length = %d, want 14", len(labeled[0].Vector))
	}
}
