module smarteryou

go 1.22
