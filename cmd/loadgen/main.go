// Command loadgen is the fleet-scale load harness: it replays declarative
// scenario profiles (scenarios/*.json) against an Authentication Server
// and publishes per-op latency histograms, throughput, error/redirect/
// busy counts and SLO verdicts into a BENCH_fleet.json document.
//
// By default each scenario self-hosts: loadgen synthesizes the template
// workload, starts the scenario's in-process topology (a single server,
// a leader–follower pair with traffic aimed at the follower, or a
// shard-ownership cluster with a spare node for mid-run rebalance), runs
// the load through the scenario's simulated network conditions, and
// tears the cluster down. With -addr the same traffic targets an
// already-running authserver instead (network conditioning still
// applies; multi-node topologies and their mid-run hooks need
// self-hosting and are skipped).
//
// Scenario files carry full fleet sizes (10^5..10^6 identities); -users
// and -duration scale a run down (or up) proportionally, cohort and
// template pool included, so the same profiles serve both the long-form
// benchmark and a quick smoke run:
//
//	loadgen -scenarios scenarios -out BENCH_fleet.json -users 4000 -duration 15
//	loadgen -scenario baseline-lan -users 200000            # one profile, full size
//	loadgen -addr 127.0.0.1:7600 -key secret -scenario baseline-lan
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"smarteryou/internal/fleet"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir      = flag.String("scenarios", "scenarios", "directory of scenario profiles (*.json)")
		only     = flag.String("scenario", "", "comma-separated scenario names to run (default: all in -scenarios)")
		out      = flag.String("out", "BENCH_fleet.json", "benchmark output path")
		addr     = flag.String("addr", "", "target an already-running authserver instead of self-hosting (skips follower/failover scenarios)")
		key      = flag.String("key", "fleet-bench", "pre-shared HMAC key (must match the server's when -addr is set)")
		users    = flag.Int("users", 0, "override fleet size, scaling cohort and template pool proportionally (0: profile value)")
		duration = flag.Float64("duration", 0, "override modeled steady-state seconds (0: profile value)")
		workers  = flag.Int("workers", 0, "override concurrent load workers (0: profile value)")
		strict   = flag.Bool("strict", false, "exit non-zero when any scenario fails its SLO")
		quiet    = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	scenarios, err := fleet.LoadDir(*dir)
	if err != nil {
		log.Print(err)
		return 1
	}
	if *only != "" {
		scenarios = filterScenarios(scenarios, *only)
		if len(scenarios) == 0 {
			log.Printf("loadgen: no scenario in %s matches -scenario %q", *dir, *only)
			return 1
		}
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	var reports []fleet.Report
	for _, sc := range scenarios {
		sc = sc.Scaled(*users, *duration)
		if *workers > 0 {
			sc.Workers = *workers
		}
		if *addr != "" && sc.Cluster != fleet.ClusterSingle {
			logf("loadgen: skipping %s: the %s topology needs self-hosting", sc.Name, sc.Cluster)
			continue
		}
		rep, err := runScenario(sc, *addr, []byte(*key), logf)
		if err != nil {
			log.Printf("loadgen: scenario %s: %v", sc.Name, err)
			return 1
		}
		reports = append(reports, *rep)
		verdict := "PASS"
		if !rep.SLO.Pass {
			verdict = "FAIL: " + strings.Join(rep.SLO.Violations, "; ")
		}
		fmt.Printf("%-24s %7d ops %8.1f ops/s  auth p99 %8.2fms%s  err %.4f  %s\n",
			sc.Name, rep.TotalOps, rep.Throughput, authP99(rep), burstP99s(rep), rep.ErrorRate, verdict)
	}
	if len(reports) == 0 {
		log.Print("loadgen: nothing ran")
		return 1
	}
	if err := fleet.WriteBench(*out, reports); err != nil {
		log.Print(err)
		return 1
	}
	logf("loadgen: wrote %s (%d scenarios)", *out, len(reports))
	if *strict {
		for _, r := range reports {
			if !r.SLO.Pass {
				return 1
			}
		}
	}
	return 0
}

// runScenario executes one scenario, self-hosting its topology unless an
// external address is given.
func runScenario(sc fleet.Scenario, extAddr string, key []byte, logf func(string, ...any)) (*fleet.Report, error) {
	logf("loadgen: %s: synthesizing %d-template workload (fleet %d, cohort %d)...",
		sc.Name, sc.TemplateUsers, sc.Users, sc.ScoredUsers)
	w, err := fleet.BuildWorkload(sc)
	if err != nil {
		return nil, err
	}

	opts := fleet.RunOptions{Key: key, Logf: logf}
	if extAddr != "" {
		opts.Addr = extAddr
		return fleet.Run(sc, w, opts)
	}

	scratch, err := os.MkdirTemp("", "loadgen-"+sc.Name+"-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(scratch) }()
	cluster, err := fleet.StartCluster(sc, w, fleet.ClusterOptions{
		Key: key,
		Dir: filepath.Join(scratch, "stores"),
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = cluster.Close() }()

	opts.Addr = cluster.Addr
	var failoverTook, rebalanceTook float64
	if sc.FailoverAt > 0 {
		opts.MidRun = func() {
			took := cluster.Failover()
			failoverTook = float64(took.Milliseconds())
			logf("loadgen: %s: leader killed, follower promoted in %s", sc.Name, took)
		}
	}
	if sc.RebalanceAt > 0 {
		opts.MidRun = func() {
			took := cluster.Rebalance()
			rebalanceTook = float64(took.Milliseconds())
			logf("loadgen: %s: spare node joined, shards handed off in %s", sc.Name, took)
		}
	}
	rep, err := fleet.Run(sc, w, opts)
	if err != nil {
		return nil, err
	}
	rep.FailoverTookMs = failoverTook
	rep.RebalanceTookMs = rebalanceTook
	return rep, nil
}

// filterScenarios keeps the named profiles, preserving directory order.
func filterScenarios(all []fleet.Scenario, names string) []fleet.Scenario {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		want[strings.TrimSpace(n)] = true
	}
	var out []fleet.Scenario
	for _, sc := range all {
		if want[sc.Name] {
			out = append(out, sc)
		}
	}
	return out
}

// authP99 pulls the authenticate p99 for the console line (0 when the
// scenario had no authenticate traffic).
func authP99(r *fleet.Report) float64 {
	if op := r.Ops["authenticate"]; op != nil {
		return op.Latency.P99Ms
	}
	return 0
}

// burstP99s renders the batch/stream per-window p99s when the scenario
// carried burst traffic (empty otherwise, keeping the classic line).
func burstP99s(r *fleet.Report) string {
	var b strings.Builder
	for _, op := range [...]string{"batch", "stream"} {
		if o := r.Ops[op]; o != nil {
			fmt.Fprintf(&b, "  %s p99/w %.2fms", op, o.Latency.P99Ms)
		}
	}
	return b.String()
}
