// Command smarteryou runs an interactive-style demo of the full
// continuous-authentication pipeline: it enrolls a synthetic owner, trains
// the per-context models, then replays a usage timeline — owner sitting,
// owner walking, a mimicry attacker — printing each window's decision and
// the response module's escalation.
//
// Usage:
//
//	smarteryou [-users 10] [-seed 42] [-fidelity 0.9]
package main

import (
	"flag"
	"fmt"
	"os"

	"smarteryou"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		users    = flag.Int("users", 10, "population size (owner + impostors)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		fidelity = flag.Float64("fidelity", 0.9, "attacker mimicry fidelity in [0,1]")
	)
	flag.Parse()
	if *users < 3 {
		fmt.Fprintln(os.Stderr, "smarteryou: need at least 3 users")
		return 2
	}

	pop, err := smarteryou.NewPopulation(*users, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	owner := pop.Users[0]
	attacker := pop.Users[1]

	fmt.Printf("population: %d users; owner=%s (%v, %v)\n",
		*users, owner.ID, owner.Gender, owner.Age)

	// Enrollment + training.
	ownerData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 150, Sessions: 3, Days: 13, Seed: *seed + 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 150, Sessions: 2, Seed: *seed + 100 + int64(i),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		impostorData = append(impostorData, samples...)
	}
	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bundle, err := smarteryou.Train(ownerData, impostorData, smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	auth, err := smarteryou.NewAuthenticator(det, bundle)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	response := smarteryou.NewResponseModule(smarteryou.ResponsePolicy{DenyAfter: 1, LockAfter: 3})
	audit := smarteryou.NewAuditLog()
	fmt.Printf("trained on %d owner + %d impostor windows\n\n", len(ownerData), len(impostorData))

	type phase struct {
		label   string
		user    *smarteryou.User
		context smarteryou.Context
		mimic   bool
	}
	timeline := []phase{
		{"owner, sitting", owner, smarteryou.ContextStationaryUse, false},
		{"owner, walking", owner, smarteryou.ContextMovingUse, false},
		{"ATTACKER, mimicking the owner while walking", attacker, smarteryou.ContextMovingUse, true},
	}
	clock := 0.0
	for _, p := range timeline {
		fmt.Printf("--- %s ---\n", p.label)
		sess := smarteryou.Session{
			User:    p.user,
			Context: p.context,
			Seconds: 48,
			Seed:    *seed + int64(clock),
		}
		if p.mimic {
			params := owner.Params
			sess.MimicOf = &params
			sess.MimicFidelity = *fidelity
		}
		phone, err := sess.Generate(smarteryou.DevicePhone)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		watch, err := sess.Generate(smarteryou.DeviceWatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		phoneWins, err := smarteryou.ExtractWindows(phone, 6)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		watchWins, err := smarteryou.ExtractWindows(watch, 6)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for k := range phoneWins {
			d, err := auth.Authenticate(smarteryou.WindowSample{
				UserID:  p.user.ID,
				Context: p.context,
				Phone:   phoneWins[k],
				Watch:   watchWins[k],
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			action := response.Observe(d)
			clock += 6
			audit.Append(clock, d, action)
			fmt.Printf("t=%4.0fs  ctx=%-10v  score=%+6.2f  %-8v -> %v\n",
				clock, d.Context, d.Score, verdict(d.Accepted), action)
			if action == smarteryou.ActionLock {
				fmt.Println("DEVICE LOCKED — explicit re-authentication required")
				break
			}
		}
		fmt.Println()
		if response.Locked() {
			break
		}
	}
	if !response.Locked() {
		fmt.Println("warning: the attacker was not locked out within the timeline")
		return 1
	}
	if bad := smarteryou.VerifyAuditChain(audit.Entries()); bad >= 0 {
		fmt.Printf("audit chain broken at entry %d\n", bad)
		return 1
	}
	fmt.Printf("audit log: %d entries, hash chain verified\n", audit.Len())
	return 0
}

func verdict(accepted bool) string {
	if accepted {
		return "accept"
	}
	return "REJECT"
}
