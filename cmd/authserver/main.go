// Command authserver runs the cloud Authentication Server (Fig. 1): it
// trains a user-agnostic context-detection model at startup, optionally
// seeds an anonymized population, and then serves enrollment, model
// training and model download over TCP.
//
// With -data-dir, the population store and the trained-model registry are
// durable: every enrollment is written to a checksummed write-ahead log
// before it is acknowledged, state is periodically compacted (in the
// background, off the enroll path) into atomically-replaced snapshots,
// and a restarted server recovers its full population and model registry
// — no user re-enrolls. -shards partitions the store by user hash into
// independent WAL+snapshot shards so enroll throughput scales with cores;
// -keep-models bounds each user's registry history. Without -data-dir the
// server is in-memory, exactly as before.
//
// Usage:
//
//	authserver -addr 127.0.0.1:7600 -key secret [-seed-users 10] \
//	    [-data-dir /var/lib/smarteryou] [-shards 8] [-keep-models 16]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"smarteryou"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:7600", "listen address")
		key          = flag.String("key", "", "pre-shared HMAC key (required)")
		seedUsers    = flag.Int("seed-users", 10, "synthetic users to seed the population store and train the context detector")
		seed         = flag.Int64("seed", 1, "synthetic data seed")
		dataDir      = flag.String("data-dir", "", "directory for the durable population store and model registry (empty: in-memory only)")
		shards       = flag.Int("shards", 1, "independent WAL+snapshot shards in the durable store (fixed at store creation; reopening uses the on-disk count)")
		keepModels   = flag.Int("keep-models", 0, "model versions retained per user in the registry (0: unbounded)")
		trainWorkers = flag.Int("train-workers", 0, "concurrent model-training jobs (0: GOMAXPROCS); excess requests queue up to twice this, then get a busy response")
	)
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "authserver: -key is required")
		return 2
	}
	if *seedUsers < 2 {
		fmt.Fprintln(os.Stderr, "authserver: -seed-users must be at least 2")
		return 2
	}

	var store *smarteryou.PopulationStore
	if *dataDir != "" {
		var err error
		store, err = smarteryou.OpenStore(*dataDir, smarteryou.StoreOptions{
			Shards:            *shards,
			KeepModelVersions: *keepModels,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		st := store.Stats()
		log.Printf("durable store %s: %d shards, recovered %d users, %d windows, %d model versions (replayed %d wal records, dropped %d torn bytes)",
			*dataDir, len(st.Shards), st.Users, st.Windows, len(st.ModelVersions), st.Recovery.Replayed, st.Recovery.TruncatedBytes)
	}

	// A recovered store may already hold the published context detector;
	// loading it skips the startup corpus generation and forest training
	// entirely when the population is also recovered.
	var detector *smarteryou.Detector
	if store != nil {
		if det, err := store.LatestDetector(); err == nil {
			detector = det
			log.Printf("loaded context detector from registry")
		}
	}
	needSeed := store == nil || store.Stats().Users == 0

	var population map[string][]smarteryou.WindowSample
	if detector == nil || needSeed {
		log.Printf("generating %d-user context-training corpus...", *seedUsers)
		pop, err := smarteryou.NewPopulation(*seedUsers, *seed)
		if err != nil {
			log.Print(err)
			return 1
		}
		population = make(map[string][]smarteryou.WindowSample, *seedUsers)
		var ctxTrain []smarteryou.WindowSample
		for i, u := range pop.Users {
			samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
				WindowSeconds:  6,
				SessionSeconds: 120,
				Sessions:       2,
				Contexts: []smarteryou.Context{
					smarteryou.ContextStationaryUse, smarteryou.ContextMovingUse,
					smarteryou.ContextPhoneOnTable, smarteryou.ContextOnVehicle,
				},
				Seed: *seed + int64(i)*17,
			})
			if err != nil {
				log.Print(err)
				return 1
			}
			population[u.ID] = samples
			ctxTrain = append(ctxTrain, samples...)
		}
		if detector == nil {
			detector, err = smarteryou.TrainContextDetector(
				smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: *seed})
			if err != nil {
				log.Print(err)
				return 1
			}
			if store != nil {
				if err := store.PublishDetector(detector); err != nil {
					log.Print(err)
					return 1
				}
				log.Printf("published context detector to registry")
			}
		}
	} else {
		log.Printf("skipping corpus generation: detector and population recovered from store")
	}

	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:          []byte(*key),
		Detector:     detector,
		Logf:         log.Printf,
		Store:        store,
		TrainWorkers: *trainWorkers,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	// Seed the synthetic population only into a store that has none yet;
	// a recovered store already holds (possibly real) enrollments, and
	// reseeding would append duplicate windows on every restart.
	if needSeed {
		server.SeedPopulation(population)
	} else {
		log.Printf("skipping synthetic seed: store already populated")
	}
	bound, err := server.Start(*addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("authentication server listening on %s (population: %d users)", bound, *seedUsers)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	code := 0
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
		code = 1
	}
	// The store outlives the server so in-flight requests can still
	// append; flush and close it only once the listener has drained.
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("close store: %v", err)
			code = 1
		}
		log.Printf("durable store flushed")
	}
	return code
}
