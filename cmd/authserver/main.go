// Command authserver runs the cloud Authentication Server (Fig. 1): it
// trains a user-agnostic context-detection model at startup, optionally
// seeds an anonymized population, and then serves enrollment, model
// training and model download over TCP.
//
// Usage:
//
//	authserver -addr 127.0.0.1:7600 -key secret [-seed-users 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"smarteryou"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:7600", "listen address")
		key       = flag.String("key", "", "pre-shared HMAC key (required)")
		seedUsers = flag.Int("seed-users", 10, "synthetic users to seed the population store and train the context detector")
		seed      = flag.Int64("seed", 1, "synthetic data seed")
	)
	flag.Parse()
	if *key == "" {
		fmt.Fprintln(os.Stderr, "authserver: -key is required")
		return 2
	}
	if *seedUsers < 2 {
		fmt.Fprintln(os.Stderr, "authserver: -seed-users must be at least 2")
		return 2
	}

	log.Printf("generating %d-user context-training corpus...", *seedUsers)
	pop, err := smarteryou.NewPopulation(*seedUsers, *seed)
	if err != nil {
		log.Print(err)
		return 1
	}
	population := make(map[string][]smarteryou.WindowSample, *seedUsers)
	var ctxTrain []smarteryou.WindowSample
	for i, u := range pop.Users {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds:  6,
			SessionSeconds: 120,
			Sessions:       2,
			Contexts: []smarteryou.Context{
				smarteryou.ContextStationaryUse, smarteryou.ContextMovingUse,
				smarteryou.ContextPhoneOnTable, smarteryou.ContextOnVehicle,
			},
			Seed: *seed + int64(i)*17,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		population[u.ID] = samples
		ctxTrain = append(ctxTrain, samples...)
	}
	detector, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: *seed})
	if err != nil {
		log.Print(err)
		return 1
	}

	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:      []byte(*key),
		Detector: detector,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	server.SeedPopulation(population)
	bound, err := server.Start(*addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("authentication server listening on %s (population: %d users)", bound, *seedUsers)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
		return 1
	}
	return 0
}
