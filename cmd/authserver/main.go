// Command authserver runs the cloud Authentication Server (Fig. 1): it
// trains a user-agnostic context-detection model at startup, optionally
// seeds an anonymized population, and then serves enrollment, model
// training and model download over TCP.
//
// With -data-dir, the population store and the trained-model registry are
// durable: every enrollment is written to a checksummed write-ahead log
// before it is acknowledged, state is periodically compacted (in the
// background, off the enroll path) into atomically-replaced snapshots,
// and a restarted server recovers its full population and model registry
// — no user re-enrolls. -shards partitions the store by user hash into
// independent WAL+snapshot shards so enroll throughput scales with cores;
// -keep-models bounds each user's registry history. Without -data-dir the
// server is in-memory, exactly as before.
//
// Replication turns one durable server into a leader–follower pair:
//
//   - The leader adds -replication-addr, a second listener from which
//     followers stream the store's WAL.
//   - A follower runs with -replicate-from pointing at that listener. It
//     serves authenticate, fetch-model, fetch-detector and stats from its
//     replicated store, and answers enroll/train with a redirect to the
//     leader. SIGHUP promotes a running follower to leader in place;
//     -promote starts a former follower's data dir as the new leader.
//
// On the wire the server speaks the binary envelope v2 by default and
// answers every request in the format it arrived in, so legacy JSON-v1
// clients keep working against the same listener with no flag day. v2
// adds two hot-path shapes on top of the single authenticate request:
// batched authentication (many windows for one user in one envelope, one
// HMAC verification and one model resolution) and streaming sessions
// (handshake once, then raw CRC-tailed window frames in and decision
// frames out). Server stats report per-format traffic counters.
//
// A shard-ownership cluster replaces the single write leader with N
// writable nodes, each the leader for a subset of the store's FNV shards
// while replicating every shard to its peers over a full mesh:
//
//   - Every node runs with the same -cluster-peers list: comma-separated
//     client/repl/ctrl address triples, one per node, in a canonical
//     order shared by the whole cluster. -cluster-ctrl names this node's
//     own control address, identifying it inside the list.
//   - Shard ownership auto-balances round-robin across the peers. With
//     -owned-shards, the node instead takes the listed shards from their
//     current owners at startup with a live handoff (seal, converge over
//     the mesh, publish the new map) — no acked write is lost.
//   - At startup the node adopts the live cluster map from any answering
//     peer (joining it if absent) and falls back to the balanced
//     founding map when no peer is up yet, so the same command line
//     cold-starts a cluster and rejoins a running one.
//
// Writes for shards a node does not own answer with a redirect to the
// owner; clients with RouteByShard cache the versioned shard map and go
// straight to the right node.
//
// -retrain enables autonomous drift-triggered retraining (the paper's
// Fig. 7 loop, server side): every served authenticate decision updates a
// per-user confidence EWMA, and users that sink below -retrain-threshold
// are retrained through a coalesced, budgeted scheduler — no client or
// operator action. With -data-dir, drift state checkpoints into the store
// registry so restarts resume with the accumulated drift. A follower
// observes drift but defers scheduling to the leader until promoted.
//
// Usage:
//
//	authserver -addr 127.0.0.1:7600 -key secret [-seed-users 10] \
//	    [-data-dir /var/lib/smarteryou] [-shards 8] [-keep-models 16] \
//	    [-replication-addr 127.0.0.1:7700] \
//	    [-replicate-from 127.0.0.1:7700] [-promote] \
//	    [-cluster-peers host1:7600/host1:7700/host1:7800,host2:7600/host2:7700/host2:7800] \
//	    [-cluster-ctrl host1:7800] [-owned-shards 0,2,4] \
//	    [-retrain] [-retrain-threshold 0.2] [-retrain-budget 2] \
//	    [-retrain-cooldown 30m] [-retrain-recent 400]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smarteryou"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr            = flag.String("addr", "127.0.0.1:7600", "listen address")
		key             = flag.String("key", "", "pre-shared HMAC key (required)")
		seedUsers       = flag.Int("seed-users", 10, "synthetic users to seed the population store and train the context detector")
		seed            = flag.Int64("seed", 1, "synthetic data seed")
		dataDir         = flag.String("data-dir", "", "directory for the durable population store and model registry (empty: in-memory only)")
		shards          = flag.Int("shards", 1, "independent WAL+snapshot shards in the durable store (fixed at store creation; reopening uses the on-disk count)")
		keepModels      = flag.Int("keep-models", 0, "model versions retained per user in the registry (0: unbounded)")
		trainWorkers    = flag.Int("train-workers", 0, "concurrent model-training jobs (0: GOMAXPROCS); excess requests queue up to twice this, then get a busy response")
		replicationAddr = flag.String("replication-addr", "", "additional listener streaming the store's WAL to replication followers (requires -data-dir)")
		replicateFrom   = flag.String("replicate-from", "", "run as a read-only follower of the leader's replication listener at this address (requires -data-dir)")
		promote         = flag.Bool("promote", false, "start a former follower's -data-dir as the new leader (the store must not be empty)")

		clusterPeers = flag.String("cluster-peers", "", "comma-separated client/repl/ctrl address triples of every cluster node, in an order shared by the whole cluster (enables shard-ownership cluster mode; requires -data-dir)")
		clusterCtrl  = flag.String("cluster-ctrl", "", "this node's control-endpoint address, identifying it inside -cluster-peers")
		ownedShards  = flag.String("owned-shards", "", "comma-separated shard indexes this node should own; missing ones are taken from their owners with a live handoff at startup (default: the auto-balanced share)")

		retrainOn        = flag.Bool("retrain", false, "enable autonomous drift-triggered retraining from served authenticate decisions")
		retrainThreshold = flag.Float64("retrain-threshold", 0.2, "confidence-EWMA level below which a user becomes a retrain candidate (the paper's epsilon_CS)")
		retrainBudget    = flag.Int("retrain-budget", 2, "scheduled retrains allowed to run concurrently")
		retrainCooldown  = flag.Duration("retrain-cooldown", 30*time.Minute, "minimum gap between scheduled retrains of the same user")
		retrainRecent    = flag.Int("retrain-recent", 400, "newest stored windows a scheduled retrain trains on")

		storeScrub       = flag.Bool("store-scrub", false, "offline mode: verify the -data-dir store's content-addressed chunks (hashes, references), report orphans and damage, then exit")
		storeScrubRemove = flag.Bool("store-scrub-remove", false, "with -store-scrub, delete orphaned chunks instead of only reporting them")
	)
	flag.Parse()
	if *storeScrub || *storeScrubRemove {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "authserver: -store-scrub needs -data-dir")
			return 2
		}
		return runScrub(*dataDir, *shards, *keepModels, *storeScrubRemove)
	}
	if *key == "" {
		fmt.Fprintln(os.Stderr, "authserver: -key is required")
		return 2
	}
	if *seedUsers < 2 {
		fmt.Fprintln(os.Stderr, "authserver: -seed-users must be at least 2")
		return 2
	}
	if (*replicationAddr != "" || *replicateFrom != "" || *promote) && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "authserver: replication needs -data-dir (the WAL is the replication log)")
		return 2
	}
	if *replicateFrom != "" && *promote {
		fmt.Fprintln(os.Stderr, "authserver: -promote and -replicate-from are mutually exclusive (promote takes over as leader)")
		return 2
	}
	if *clusterPeers != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "authserver: cluster mode needs -data-dir (the WAL is the mesh replication log)")
			return 2
		}
		if *replicateFrom != "" || *promote || *replicationAddr != "" {
			fmt.Fprintln(os.Stderr, "authserver: -cluster-peers is exclusive with -replicate-from/-promote/-replication-addr (a cluster node runs its own replication listener from its address triple)")
			return 2
		}
	} else if *clusterCtrl != "" || *ownedShards != "" {
		fmt.Fprintln(os.Stderr, "authserver: -cluster-ctrl and -owned-shards need -cluster-peers")
		return 2
	}
	var retrainCfg *smarteryou.ServerRetrainConfig
	if *retrainOn {
		retrainCfg = &smarteryou.ServerRetrainConfig{
			Threshold:     *retrainThreshold,
			Budget:        *retrainBudget,
			Cooldown:      *retrainCooldown,
			RecentWindows: *retrainRecent,
		}
		log.Printf("drift retraining enabled: threshold %.2f, budget %d, cooldown %s, recent %d windows",
			*retrainThreshold, *retrainBudget, *retrainCooldown, *retrainRecent)
	}

	if *clusterPeers != "" {
		return runCluster(clusterSettings{
			addr: *addr, key: *key, peers: *clusterPeers, ctrl: *clusterCtrl,
			owned: *ownedShards, dataDir: *dataDir,
			shards: *shards, keepModels: *keepModels, trainWorkers: *trainWorkers,
			seedUsers: *seedUsers, seed: *seed, retrain: retrainCfg,
		})
	}

	var store *smarteryou.PopulationStore
	if *dataDir != "" {
		var err error
		store, err = smarteryou.OpenStore(*dataDir, smarteryou.StoreOptions{
			Shards:            *shards,
			KeepModelVersions: *keepModels,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
		st := store.Stats()
		log.Printf("durable store %s: %d shards, recovered %d users, %d windows, %d model versions (replayed %d wal records, dropped %d torn bytes)",
			*dataDir, len(st.Shards), st.Users, st.Windows, len(st.ModelVersions), st.Recovery.Replayed, st.Recovery.TruncatedBytes)
	}
	if *promote && store.Stats().Users == 0 {
		log.Printf("-promote: store at %s is empty; nothing to take over", *dataDir)
		return 1
	}
	if *promote {
		log.Printf("promoting %s: serving as leader with the replicated state", *dataDir)
	}

	if *replicateFrom != "" {
		return runFollower(store, *addr, *key, *replicateFrom, *replicationAddr, retrainCfg)
	}

	// A recovered store may already hold the published context detector;
	// loading it skips the startup corpus generation and forest training
	// entirely when the population is also recovered.
	var detector *smarteryou.Detector
	if store != nil {
		if det, err := store.LatestDetector(); err == nil {
			detector = det
			log.Printf("loaded context detector from registry")
		}
	}
	needSeed := store == nil || store.Stats().Users == 0

	var population map[string][]smarteryou.WindowSample
	if detector == nil || needSeed {
		log.Printf("generating %d-user context-training corpus...", *seedUsers)
		var ctxTrain []smarteryou.WindowSample
		var err error
		population, ctxTrain, err = synthesizeCorpus(*seedUsers, *seed)
		if err != nil {
			log.Print(err)
			return 1
		}
		if detector == nil {
			detector, err = smarteryou.TrainContextDetector(
				smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: *seed})
			if err != nil {
				log.Print(err)
				return 1
			}
			if store != nil {
				if err := store.PublishDetector(detector); err != nil {
					log.Print(err)
					return 1
				}
				log.Printf("published context detector to registry")
			}
		}
	} else {
		log.Printf("skipping corpus generation: detector and population recovered from store")
	}

	// The replication leader is created before the server so the stats
	// provider below reads a stable variable; it starts listening after
	// the client listener is up.
	var leader *smarteryou.ReplicationLeader
	if *replicationAddr != "" {
		var err error
		leader, err = smarteryou.NewReplicationLeader(smarteryou.ReplicationLeaderConfig{
			Store:         store,
			Key:           []byte(*key),
			AdvertiseAddr: *addr,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Print(err)
			return 1
		}
	}

	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:          []byte(*key),
		Detector:     detector,
		Logf:         log.Printf,
		Store:        store,
		TrainWorkers: *trainWorkers,
		Retrain:      retrainCfg,
		ReplicationInfo: func() *smarteryou.ReplicationInfo {
			if leader == nil {
				return nil
			}
			return replicationInfo(leader.Status())
		},
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	// Seed the synthetic population only into a store that has none yet;
	// a recovered store already holds (possibly real) enrollments, and
	// reseeding would append duplicate windows on every restart.
	if needSeed {
		server.SeedPopulation(population)
	} else {
		log.Printf("skipping synthetic seed: store already populated")
	}
	bound, err := server.Start(*addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	popUsers := *seedUsers
	if store != nil {
		popUsers = store.Stats().Users
	}
	log.Printf("authentication server listening on %s (population: %d users)", bound, popUsers)
	if leader != nil {
		raddr, err := leader.Serve(*replicationAddr)
		if err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("replication listener on %s (followers catch up from the WAL)", raddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	code := 0
	if leader != nil {
		if err := leader.Close(); err != nil {
			log.Printf("close replication: %v", err)
			code = 1
		}
	}
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
		code = 1
	}
	// The store outlives the server so in-flight requests can still
	// append; flush and close it only once the listener has drained.
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("close store: %v", err)
			code = 1
		}
		log.Printf("durable store flushed")
	}
	return code
}

// runFollower runs the read-only follower mode: replicate the leader's
// store (including the published context detector), serve reads, redirect
// writes, and promote to leader on SIGHUP. With retrainCfg, the follower
// monitors drift on its own authenticate traffic but defers scheduling to
// the leader until promoted.
func runFollower(store *smarteryou.PopulationStore, addr, key, leaderAddr, replicationAddr string, retrainCfg *smarteryou.ServerRetrainConfig) int {
	// First pass without serving: pull the leader's state until the
	// context detector — which every response path needs — is replicated.
	boot, err := smarteryou.StartReplicationFollower(smarteryou.ReplicationFollowerConfig{
		Store:      store,
		Key:        []byte(key),
		LeaderAddr: leaderAddr,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("follower of %s: waiting for the replicated context detector...", leaderAddr)
	var detector *smarteryou.Detector
	for deadline := time.Now().Add(2 * time.Minute); ; {
		if det, err := store.LatestDetector(); err == nil {
			detector = det
			break
		}
		if time.Now().After(deadline) {
			_ = boot.Close()
			log.Printf("no context detector replicated from %s after 2m; is the leader seeded?", leaderAddr)
			return 1
		}
		time.Sleep(250 * time.Millisecond)
	}
	// Stop the bootstrap stream so the server's construction-time replay
	// of the store races nothing; the serving stream below resumes from
	// the durable cursors.
	_ = boot.Close()
	log.Printf("context detector replicated; store at %d users", store.Stats().Users)

	var follower *smarteryou.ReplicationFollower
	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:        []byte(key),
		Detector:   detector,
		Logf:       log.Printf,
		Store:      store,
		Follower:   true,
		LeaderAddr: leaderAddr,
		Retrain:    retrainCfg,
		ReplicationInfo: func() *smarteryou.ReplicationInfo {
			if follower == nil {
				return nil
			}
			return replicationInfo(follower.Status())
		},
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	follower, err = smarteryou.StartReplicationFollower(smarteryou.ReplicationFollowerConfig{
		Store:        store,
		Key:          []byte(key),
		LeaderAddr:   leaderAddr,
		Logf:         log.Printf,
		OnApply:      server.ApplyReplicatedOp,
		OnSnapshot:   func(int) { server.ReloadFromStore() },
		OnLeaderAddr: server.SetLeaderAddr,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	bound, err := server.Start(addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	log.Printf("read-only follower listening on %s (writes redirect to the leader; SIGHUP promotes)", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	promoted := false
	var leader *smarteryou.ReplicationLeader
	for {
		sig := <-stop
		if sig != syscall.SIGHUP {
			break
		}
		if promoted {
			log.Printf("SIGHUP: already promoted")
			continue
		}
		// Promotion: stop replicating, then open writes. The store keeps
		// the leader-assigned sequence numbers, so new enrollments continue
		// each shard's sequence space.
		follower.Promote()
		server.Promote()
		promoted = true
		log.Printf("promoted to leader at %v", store.ShardLastSeqs())
		if replicationAddr != "" {
			var err error
			leader, err = smarteryou.NewReplicationLeader(smarteryou.ReplicationLeaderConfig{
				Store:         store,
				Key:           []byte(key),
				AdvertiseAddr: addr,
				Logf:          log.Printf,
			})
			if err != nil {
				log.Print(err)
				continue
			}
			raddr, err := leader.Serve(replicationAddr)
			if err != nil {
				log.Print(err)
				leader = nil
				continue
			}
			log.Printf("replication listener on %s", raddr)
		}
	}
	log.Print("shutting down")
	code := 0
	if leader != nil {
		if err := leader.Close(); err != nil {
			log.Printf("close replication: %v", err)
			code = 1
		}
	}
	if err := follower.Close(); err != nil {
		log.Printf("close follower: %v", err)
		code = 1
	}
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
		code = 1
	}
	if err := store.Close(); err != nil {
		log.Printf("close store: %v", err)
		code = 1
	}
	log.Printf("durable store flushed")
	return code
}

// clusterSettings carries the flag values of the shard-ownership
// cluster mode.
type clusterSettings struct {
	addr, key, peers, ctrl, owned, dataDir string
	shards, keepModels, trainWorkers       int
	seedUsers                              int
	seed                                   int64
	retrain                                *smarteryou.ServerRetrainConfig
}

// runCluster runs one node of the shard-ownership cluster: replication
// leader for the shards it owns, mesh follower of every peer, serving
// reads for the whole population and redirecting writes it does not
// own. The node listens on its own triple from -cluster-peers (-addr is
// ignored; the triple is the one source of addresses).
func runCluster(cfg clusterSettings) int {
	infos, selfIdx, err := parseClusterPeers(cfg.peers, cfg.ctrl)
	if err != nil {
		fmt.Fprintf(os.Stderr, "authserver: %v\n", err)
		return 2
	}
	self := infos[selfIdx]
	want, err := parseShardList(cfg.owned)
	if err != nil {
		fmt.Fprintf(os.Stderr, "authserver: -owned-shards: %v\n", err)
		return 2
	}

	// A cluster store skips the per-record fsync for mesh copies: the
	// shard owner is durable before acking, and a handoff re-syncs the
	// shard before ownership moves.
	store, err := smarteryou.OpenStore(cfg.dataDir, smarteryou.StoreOptions{
		Shards:            cfg.shards,
		KeepModelVersions: cfg.keepModels,
		ReplicaNoSync:     true,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	st := store.Stats()
	log.Printf("durable store %s: %d shards, recovered %d users, %d windows",
		cfg.dataDir, len(st.Shards), st.Users, st.Windows)
	if store.ShardCount() < len(infos) {
		log.Printf("warning: %d shards over %d nodes leaves nodes with no writable share; create the store with -shards >= node count", store.ShardCount(), len(infos))
	}

	// Bootstrap map: adopt the live cluster's map from any answering
	// peer; found the cluster on the balanced map when nobody is up yet
	// (every founding node derives the same one from the shared peer
	// list).
	var m *smarteryou.ClusterShardMap
	for i, info := range infos {
		if i == selfIdx {
			continue
		}
		fetched, err := smarteryou.FetchClusterMap(info.CtrlAddr, []byte(cfg.key), 2*time.Second)
		if err != nil {
			continue
		}
		if m == nil || fetched.Version > m.Version {
			m = fetched
		}
	}
	if m != nil {
		log.Printf("adopted cluster map v%d from a peer", m.Version)
	} else {
		m, err = smarteryou.BalancedShardMap(infos, store.ShardCount())
		if err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("no peer answered; founding on the balanced map (%d shards over %d nodes)", m.Shards(), len(infos))
	}

	// Detector: recover from the registry, else train it from the
	// deterministic corpus — identical on every node for the same -seed.
	// Only the node owning the detector's registry shard publishes it;
	// the record reaches everyone else over the mesh.
	var detector *smarteryou.Detector
	if det, err := store.LatestDetector(); err == nil {
		detector = det
		log.Printf("loaded context detector from registry")
	}
	needSeed := st.Users == 0
	var population map[string][]smarteryou.WindowSample
	if detector == nil || needSeed {
		log.Printf("generating %d-user context-training corpus...", cfg.seedUsers)
		var ctxTrain []smarteryou.WindowSample
		population, ctxTrain, err = synthesizeCorpus(cfg.seedUsers, cfg.seed)
		if err != nil {
			log.Print(err)
			return 1
		}
		if detector == nil {
			detector, err = smarteryou.TrainContextDetector(
				smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: cfg.seed})
			if err != nil {
				log.Print(err)
				return 1
			}
			selfInMap := mapIndexOf(m, self.CtrlAddr)
			if detShard := m.ShardForUser(smarteryou.DetectorRegistryKey); selfInMap >= 0 && m.OwnerOf(detShard) == selfInMap {
				if err := store.PublishDetector(detector); err != nil {
					log.Print(err)
					return 1
				}
				log.Printf("published context detector to registry (this node owns its shard %d)", detShard)
			}
		}
	}

	node, err := smarteryou.NewClusterNode(smarteryou.ClusterNodeConfig{
		Self:  self,
		Map:   m,
		Store: store,
		Key:   []byte(cfg.key),
		Logf:  log.Printf,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:          []byte(cfg.key),
		Detector:     detector,
		Logf:         log.Printf,
		Store:        store,
		TrainWorkers: cfg.trainWorkers,
		Retrain:      cfg.retrain,
		Router:       node,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	// Seed only the users whose shards this node owns: every node runs
	// the same flags, derives the same corpus, and contributes exactly
	// its share — the mesh converges the full population everywhere.
	if needSeed && population != nil {
		selfInMap := mapIndexOf(m, self.CtrlAddr)
		mine := make(map[string][]smarteryou.WindowSample)
		for id, samples := range population {
			if selfInMap >= 0 && m.OwnerOf(m.ShardForUser(smarteryou.AnonymizeUser(id))) == selfInMap {
				mine[id] = samples
			}
		}
		server.SeedPopulation(mine)
		log.Printf("seeded %d of %d synthetic users (this node's shards)", len(mine), len(population))
	}

	if err := node.Start(smarteryou.ClusterHooks{
		OnApply:    server.ApplyReplicatedOp,
		OnSnapshot: func(int) { server.ReloadFromStore() },
	}); err != nil {
		log.Print(err)
		return 1
	}
	bound, err := server.Start(self.ClientAddr)
	if err != nil {
		log.Print(err)
		return 1
	}
	if mapIndexOf(node.Map(), self.CtrlAddr) < 0 {
		if err := node.Join(30 * time.Second); err != nil {
			log.Printf("join cluster: %v", err)
			return 1
		}
		log.Printf("joined the cluster: map now v%d", node.Map().Version)
	}
	if len(want) > 0 {
		// Peers may still be booting in a cold cluster start; keep
		// retrying the handoff until they answer. Each attempt stays
		// under the owners' seal timeout so a failed round unseals.
		deadline := time.Now().Add(60 * time.Second)
		for {
			if err = node.AcquireShards(want, 8*time.Second); err == nil {
				break
			}
			if time.Now().After(deadline) {
				log.Printf("acquire -owned-shards: %v", err)
				return 1
			}
			log.Printf("shard handoff not ready (%v); retrying", err)
			time.Sleep(time.Second)
		}
	}
	owned, total := node.OwnedShards()
	log.Printf("cluster node listening on %s: map v%d, owning %d of %d shards %v",
		bound, node.Map().Version, owned, total, node.Map().OwnedBy(mapIndexOf(node.Map(), self.CtrlAddr)))

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down")
	code := 0
	if err := server.Close(); err != nil {
		log.Printf("close: %v", err)
		code = 1
	}
	if err := node.Close(); err != nil {
		log.Printf("close cluster node: %v", err)
		code = 1
	}
	if err := store.Close(); err != nil {
		log.Printf("close store: %v", err)
		code = 1
	}
	log.Printf("durable store flushed")
	return code
}

// parseClusterPeers parses the -cluster-peers triples and locates this
// node in them by its -cluster-ctrl address.
func parseClusterPeers(list, ctrl string) ([]smarteryou.ClusterNodeInfo, int, error) {
	if ctrl == "" {
		return nil, 0, fmt.Errorf("-cluster-peers needs -cluster-ctrl to identify this node")
	}
	self := -1
	var infos []smarteryou.ClusterNodeInfo
	for _, ent := range strings.Split(list, ",") {
		parts := strings.Split(strings.TrimSpace(ent), "/")
		if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
			return nil, 0, fmt.Errorf("-cluster-peers entry %q: want a client/repl/ctrl address triple", strings.TrimSpace(ent))
		}
		info := smarteryou.ClusterNodeInfo{ClientAddr: parts[0], ReplAddr: parts[1], CtrlAddr: parts[2]}
		if info.CtrlAddr == ctrl {
			if self >= 0 {
				return nil, 0, fmt.Errorf("-cluster-peers lists control address %s twice", ctrl)
			}
			self = len(infos)
		}
		infos = append(infos, info)
	}
	if self < 0 {
		return nil, 0, fmt.Errorf("-cluster-ctrl %s does not appear in -cluster-peers", ctrl)
	}
	return infos, self, nil
}

// parseShardList parses the -owned-shards indexes (range checking is the
// handoff's job — it knows the map).
func parseShardList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad shard index %q", strings.TrimSpace(f))
		}
		out = append(out, n)
	}
	return out, nil
}

// mapIndexOf locates a node in a shard map by control address (-1: not
// a member).
func mapIndexOf(m *smarteryou.ClusterShardMap, ctrlAddr string) int {
	for i, n := range m.Nodes {
		if n.CtrlAddr == ctrlAddr {
			return i
		}
	}
	return -1
}

// synthesizeCorpus generates the synthetic seed population and the
// pooled context-training windows. Generation is deterministic in
// (seedUsers, seed), so every cluster node started with the same flags
// derives the identical corpus — and from it, the identical detector.
func synthesizeCorpus(seedUsers int, seed int64) (map[string][]smarteryou.WindowSample, []smarteryou.WindowSample, error) {
	pop, err := smarteryou.NewPopulation(seedUsers, seed)
	if err != nil {
		return nil, nil, err
	}
	population := make(map[string][]smarteryou.WindowSample, seedUsers)
	var ctxTrain []smarteryou.WindowSample
	for i, u := range pop.Users {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds:  6,
			SessionSeconds: 120,
			Sessions:       2,
			Contexts: []smarteryou.Context{
				smarteryou.ContextStationaryUse, smarteryou.ContextMovingUse,
				smarteryou.ContextPhoneOnTable, smarteryou.ContextOnVehicle,
			},
			Seed: seed + int64(i)*17,
		})
		if err != nil {
			return nil, nil, err
		}
		population[u.ID] = samples
		ctxTrain = append(ctxTrain, samples...)
	}
	return population, ctxTrain, nil
}

// replicationInfo shapes a replication status for the stats response.
func replicationInfo(st smarteryou.ReplicationStatus) *smarteryou.ReplicationInfo {
	info := &smarteryou.ReplicationInfo{
		Role:       st.Role,
		Connected:  st.Connected,
		LeaderAddr: st.LeaderAddr,
		ShardSeqs:  st.ShardSeqs,
	}
	for _, f := range st.Followers {
		info.Followers = append(info.Followers, smarteryou.ReplicationFollowerInfo{
			Addr:  f.Addr,
			Acked: f.Acked,
			Lag:   f.Lag,
		})
	}
	return info
}
