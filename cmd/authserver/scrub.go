package main

import (
	"fmt"
	"log"
	"os"

	"smarteryou"
)

// runScrub is the -store-scrub offline mode: open the durable store (which
// replays its logs, so every live reference is known), re-hash every chunk
// file in the content-addressed store, and cross-check the two. Orphaned
// chunks — on disk but referenced by no snapshot or registry entry, the
// residue of a crash between a chunk flush and a sweep — are reported, and
// removed with -store-scrub-remove. Corrupt or missing live chunks are
// only ever reported: they mean data loss, and the exit status says so.
func runScrub(dataDir string, shards, keepModels int, remove bool) int {
	st, err := smarteryou.OpenStore(dataDir, smarteryou.StoreOptions{
		Shards:            shards,
		KeepModelVersions: keepModels,
		SnapshotEvery:     -1, // verify what is on disk; no compaction churn
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "authserver: open store for scrub: %v\n", err)
		return 1
	}
	defer func() {
		if err := st.Close(); err != nil {
			log.Printf("close store: %v", err)
		}
	}()

	rep, err := st.ScrubCAS(remove)
	if err != nil {
		fmt.Fprintf(os.Stderr, "authserver: scrub: %v\n", err)
		return 1
	}
	fmt.Printf("scrub of %s:\n", dataDir)
	fmt.Printf("  chunks on disk:   %d (%d bytes)\n", rep.DiskChunks, rep.DiskBytes)
	fmt.Printf("  live chunks:      %d\n", rep.Live)
	fmt.Printf("  orphaned chunks:  %d (%d bytes)\n", rep.Orphans, rep.OrphanBytes)
	if remove {
		fmt.Printf("  removed:          %d (%d bytes)\n", rep.Removed, rep.RemovedBytes)
	}
	for _, h := range rep.Corrupt {
		fmt.Printf("  CORRUPT chunk:    %s\n", h.Hex())
	}
	for _, h := range rep.Missing {
		fmt.Printf("  MISSING chunk:    %s\n", h.Hex())
	}
	if len(rep.Corrupt) > 0 || len(rep.Missing) > 0 {
		fmt.Println("scrub found damaged live chunks — restore this replica from a peer")
		return 1
	}
	fmt.Println("scrub clean")
	return 0
}
