// Command datagen materializes the synthetic sensor dataset to disk, for
// inspection or for use by external tooling: either extracted feature
// windows (JSON) or raw sensor streams (CSV).
//
// Usage:
//
//	datagen -users 5 -out dataset.json                 # feature windows
//	datagen -format csv -user 0 -context moving-use -seconds 60 -out stream.csv
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"smarteryou"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		users   = flag.Int("users", 5, "population size (json format)")
		user    = flag.Int("user", 0, "user index (csv format)")
		seconds = flag.Float64("seconds", 60, "stream length (csv format)")
		context = flag.String("context", "moving-use", "context: stationary-use|moving-use|phone-on-table|on-vehicle")
		device  = flag.String("device", "phone", "device: phone|watch (csv format)")
		format  = flag.String("format", "json", "output format: json (feature windows) or csv (raw stream)")
		out     = flag.String("out", "", "output path (default stdout)")
		seed    = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		w = f
	}

	switch *format {
	case "json":
		if err := writeJSON(w, *users, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case "csv":
		if err := writeCSV(w, *users, *user, *seconds, *context, *device, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q\n", *format)
		return 2
	}
	return 0
}

// writeJSON emits every user's feature windows as one JSON document.
func writeJSON(w *os.File, users int, seed int64) error {
	pop, err := smarteryou.NewPopulation(users, seed)
	if err != nil {
		return err
	}
	type userRecord struct {
		ID      string                    `json:"id"`
		Gender  string                    `json:"gender"`
		Age     string                    `json:"age"`
		Windows []smarteryou.WindowSample `json:"windows"`
	}
	var records []userRecord
	for i, u := range pop.Users {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 120, Sessions: 2, Days: 13,
			Seed: seed + int64(i)*31,
		})
		if err != nil {
			return err
		}
		records = append(records, userRecord{
			ID:      u.ID,
			Gender:  u.Gender.String(),
			Age:     u.Age.String(),
			Windows: samples,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// writeCSV emits one raw sensor stream, one sample per row.
func writeCSV(w *os.File, users, userIdx int, seconds float64, context, device string, seed int64) error {
	pop, err := smarteryou.NewPopulation(users, seed)
	if err != nil {
		return err
	}
	if userIdx < 0 || userIdx >= len(pop.Users) {
		return fmt.Errorf("datagen: user index %d out of range [0,%d)", userIdx, len(pop.Users))
	}
	var ctx smarteryou.Context
	switch context {
	case "stationary-use":
		ctx = smarteryou.ContextStationaryUse
	case "moving-use":
		ctx = smarteryou.ContextMovingUse
	case "phone-on-table":
		ctx = smarteryou.ContextPhoneOnTable
	case "on-vehicle":
		ctx = smarteryou.ContextOnVehicle
	default:
		return fmt.Errorf("datagen: unknown context %q", context)
	}
	var dev smarteryou.Device
	switch device {
	case "phone":
		dev = smarteryou.DevicePhone
	case "watch":
		dev = smarteryou.DeviceWatch
	default:
		return fmt.Errorf("datagen: unknown device %q", device)
	}
	stream, err := smarteryou.Session{
		User:    pop.Users[userIdx],
		Context: ctx,
		Seconds: seconds,
		Seed:    seed + 7,
	}.Generate(dev)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := []string{
		"t", "acc_x", "acc_y", "acc_z", "gyr_x", "gyr_y", "gyr_z",
		"mag_x", "mag_y", "mag_z", "ori_x", "ori_y", "ori_z", "light",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for i, s := range stream.Samples {
		row := []string{
			f(float64(i) / stream.Rate),
			f(s.Acc.X), f(s.Acc.Y), f(s.Acc.Z),
			f(s.Gyr.X), f(s.Gyr.Y), f(s.Gyr.Z),
			f(s.Mag.X), f(s.Mag.Y), f(s.Mag.Z),
			f(s.Ori.X), f(s.Ori.Y), f(s.Ori.Z),
			f(s.Light),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
