// Command experiments regenerates the tables and figures of the
// SmarterYou paper (DSN 2017) from the synthetic reproduction campaign.
//
// Usage:
//
//	experiments -run table7            # one artifact
//	experiments -run all               # every artifact
//	experiments -list                  # list artifact ids
//	experiments -run figure4 -quick    # reduced campaign (fast)
//	experiments -run table7 -users 35 -targets 10 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"smarteryou/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runID   = flag.String("run", "", "experiment id to run, or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		quick   = flag.Bool("quick", false, "use the reduced quick campaign")
		users   = flag.Int("users", 0, "population size (default 35, paper scale)")
		targets = flag.Int("targets", 0, "target users to average over (default 5)")
		seed    = flag.Int64("seed", 0, "campaign seed (default 1)")
		timing  = flag.Bool("time", true, "print per-experiment wall time")
		outDir  = flag.String("out", "", "also write each report to <out>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			title, err := experiments.Title(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Printf("%-10s %s\n", id, title)
		}
		return 0
	}
	if *runID == "" {
		fmt.Fprintln(os.Stderr, "usage: experiments -run <id|all> [-quick] [-users N] [-targets N] [-seed S]")
		fmt.Fprintln(os.Stderr, "       experiments -list")
		return 2
	}

	cfg := experiments.Config{}
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *users > 0 {
		cfg.Users = *users
	}
	if *targets > 0 {
		cfg.Targets = *targets
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	data, err := experiments.NewData(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			return 1
		}
		fmt.Printf("=== %s: %s ===\n\n", report.ID, report.Title)
		fmt.Println(strings.TrimRight(report.Text, "\n"))
		if *outDir != "" {
			path := filepath.Join(*outDir, report.ID+".txt")
			if err := os.WriteFile(path, []byte(report.Text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
				return 1
			}
		}
		if *timing {
			fmt.Printf("\n(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Println()
		}
	}
	return 0
}
