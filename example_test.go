package smarteryou_test

import (
	"fmt"

	"smarteryou"
)

// The synthetic population is deterministic in its seed.
func ExampleNewPopulation() {
	pop, err := smarteryou.NewPopulation(35, 1)
	if err != nil {
		panic(err)
	}
	d := pop.Demographics()
	fmt.Println(len(pop.Users), d.Female+d.Male)
	// Output: 35 35
}

// Sessions generate fixed-rate sensor streams for either device.
func ExampleSession_Generate() {
	pop, err := smarteryou.NewPopulation(1, 7)
	if err != nil {
		panic(err)
	}
	stream, err := smarteryou.Session{
		User:    pop.Users[0],
		Context: smarteryou.ContextMovingUse,
		Seconds: 12,
		Seed:    3,
	}.Generate(smarteryou.DevicePhone)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(stream.Samples), stream.Rate)
	// Output: 600 50
}

// Feature extraction turns a stream into the paper's 6 s windows.
func ExampleExtractWindows() {
	pop, err := smarteryou.NewPopulation(1, 7)
	if err != nil {
		panic(err)
	}
	stream, err := smarteryou.Session{
		User:    pop.Users[0],
		Context: smarteryou.ContextStationaryUse,
		Seconds: 30,
		Seed:    1,
	}.Generate(smarteryou.DeviceWatch)
	if err != nil {
		panic(err)
	}
	windows, err := smarteryou.ExtractWindows(stream, 6)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(windows), len(windows[0].AuthVector()))
	// Output: 5 14
}

// The end-to-end flow: enroll, train, authenticate.
func ExampleTrain() {
	pop, err := smarteryou.NewPopulation(4, 11)
	if err != nil {
		panic(err)
	}
	owner := pop.Users[0]
	ownerData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: int64(2 + i),
		})
		if err != nil {
			panic(err)
		}
		impostorData = append(impostorData, samples...)
	}
	bundle, err := smarteryou.Train(ownerData, impostorData, smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true}, // unified model: no detector needed
		Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	auth, err := smarteryou.NewAuthenticator(nil, bundle)
	if err != nil {
		panic(err)
	}
	decision, err := auth.Authenticate(ownerData[0])
	if err != nil {
		panic(err)
	}
	fmt.Println(decision.Accepted)
	// Output: true
}
