// Package smarteryou is the public API of this reproduction of
// "Implicit Smartphone User Authentication with Sensors and Contextual
// Machine Learning" (Lee & Lee, DSN 2017) — the SmarterYou system.
//
// SmarterYou continuously re-authenticates a smartphone user from the
// accelerometer and gyroscope of the phone (and, when present, a paired
// smartwatch), without user interaction and without permission-gated
// sensors. The pipeline is:
//
//	sensors -> 6 s windows -> time+frequency features (Eq. 1-4)
//	        -> user-agnostic context detection (stationary / moving)
//	        -> per-context kernel ridge regression classifier
//	        -> response module (allow / deny / lock)
//	        -> confidence-score retraining monitor
//
// This package re-exports the user-facing types of the internal
// implementation packages. A minimal flow:
//
//	pop, _ := smarteryou.NewPopulation(35, 1)          // or your own sensor source
//	owner := pop.Users[0]
//	samples, _ := smarteryou.Collect(owner, smarteryou.CollectOptions{})
//	det, _ := smarteryou.TrainContextDetector(
//		smarteryou.ContextTrainingData(otherUsersSamples), smarteryou.DetectorConfig{})
//	bundle, _ := smarteryou.Train(samples, impostorSamples, smarteryou.TrainConfig{
//		Mode: smarteryou.Mode{Combined: true, UseContext: true},
//	})
//	auth, _ := smarteryou.NewAuthenticator(det, bundle)
//	decision, _ := auth.Authenticate(window)
//
// See the examples/ directory for complete programs, and DESIGN.md for
// how each paper experiment maps onto the implementation.
package smarteryou

import (
	"time"

	"smarteryou/internal/cas"
	"smarteryou/internal/cluster"
	"smarteryou/internal/core"
	"smarteryou/internal/ctxdetect"
	"smarteryou/internal/features"
	"smarteryou/internal/replication"
	"smarteryou/internal/retrain"
	"smarteryou/internal/sensing"
	"smarteryou/internal/store"
	"smarteryou/internal/transport"
)

// Sensing: synthetic users, devices, contexts, signal generation.
type (
	// User is one device owner: a generative behavioural model plus
	// demographics.
	User = sensing.User
	// UserParams is a user's full behavioural parameter set.
	UserParams = sensing.UserParams
	// Population is a cohort of users (the study's participant pool).
	Population = sensing.Population
	// Session is one contiguous recording of a user in a fixed context.
	Session = sensing.Session
	// Stream is a fixed-rate sequence of sensor samples from one device.
	Stream = sensing.Stream
	// Sample is one 20 ms snapshot of all sensors on a device.
	Sample = sensing.Sample
	// Device identifies the smartphone or the smartwatch.
	Device = sensing.Device
	// Context is a fine-grained usage context (Section V-E).
	Context = sensing.Context
	// CoarseContext is the detected two-class context.
	CoarseContext = sensing.CoarseContext
)

// Devices.
const (
	DevicePhone = sensing.DevicePhone
	DeviceWatch = sensing.DeviceWatch
)

// Fine-grained contexts.
const (
	ContextStationaryUse = sensing.ContextStationaryUse
	ContextMovingUse     = sensing.ContextMovingUse
	ContextPhoneOnTable  = sensing.ContextPhoneOnTable
	ContextOnVehicle     = sensing.ContextOnVehicle
)

// Coarse contexts.
const (
	CoarseStationary = sensing.CoarseStationary
	CoarseMoving     = sensing.CoarseMoving
)

// SampleRate is the 50 Hz sensor sampling rate used throughout the paper.
const SampleRate = sensing.SampleRate

// NewPopulation draws n synthetic users deterministically from a seed.
func NewPopulation(n int, seed int64) (*Population, error) {
	return sensing.NewPopulation(n, seed)
}

// Mimic blends an attacker's behaviour toward a victim's with the given
// fidelity — the masquerading attack model of Section V-G.
func Mimic(attacker, victim UserParams, fidelity float64) UserParams {
	return sensing.Mimic(attacker, victim, fidelity)
}

// Features: windowing and the paper's feature vectors.
type (
	// WindowSample is one authentication observation: both devices'
	// features for the same time window.
	WindowSample = features.WindowSample
	// DeviceFeatures is one device's per-window feature summary.
	DeviceFeatures = features.DeviceFeatures
	// SensorFeatures is one sensor's nine candidate statistics.
	SensorFeatures = features.SensorFeatures
	// CollectOptions configures synthetic data collection for a user.
	CollectOptions = features.CollectOptions
)

// Collect records sessions for a user and extracts windowed features from
// both devices — the enrollment / free-form collection campaign.
func Collect(u *User, opt CollectOptions) ([]WindowSample, error) {
	return features.Collect(u, opt)
}

// ExtractWindows slices a raw stream into windows and computes features.
func ExtractWindows(stream *Stream, windowSeconds float64) ([]DeviceFeatures, error) {
	return features.ExtractWindows(stream, windowSeconds)
}

// Context detection.
type (
	// Detector is the trained user-agnostic context classifier.
	Detector = ctxdetect.Detector
	// DetectorConfig tunes detector training.
	DetectorConfig = ctxdetect.Config
	// LabeledContextVector is one context-detection training observation.
	LabeledContextVector = ctxdetect.LabeledVector
)

// ContextTrainingData converts window samples into context training
// vectors (phone features labelled with coarse context).
func ContextTrainingData(samples []WindowSample) []LabeledContextVector {
	return ctxdetect.FromSamples(samples)
}

// TrainContextDetector fits the user-agnostic Random Forest context
// detector on labelled vectors from users other than the one to be
// authenticated.
func TrainContextDetector(data []LabeledContextVector, cfg DetectorConfig) (*Detector, error) {
	return ctxdetect.Train(data, cfg)
}

// Core: training, authentication, response, retraining.
type (
	// Mode selects devices (phone vs phone+watch) and context dispatch.
	Mode = core.Mode
	// TrainConfig parameterizes the training module.
	TrainConfig = core.TrainConfig
	// ModelBundle is the set of downloadable authentication models.
	ModelBundle = core.ModelBundle
	// Authenticator is the phone-side testing module.
	Authenticator = core.Authenticator
	// Decision is the outcome of authenticating one window.
	Decision = core.Decision
	// ResponseModule escalates rejected windows to deny/lock actions.
	ResponseModule = core.ResponseModule
	// ResponsePolicy tunes the response module.
	ResponsePolicy = core.ResponsePolicy
	// Action is the response module's verdict.
	Action = core.Action
	// RetrainMonitor triggers retraining on sustained low confidence.
	RetrainMonitor = core.RetrainMonitor
	// Enrollment tracks the enrollment phase's convergence.
	Enrollment = core.Enrollment
	// OnlineAuthenticator adapts to behavioural drift window by window
	// using incremental learning and machine unlearning (Section V-I).
	OnlineAuthenticator = core.OnlineAuthenticator
	// OnlineConfig parameterizes the online authenticator.
	OnlineConfig = core.OnlineConfig
	// AuditLog is a tamper-evident, hash-chained record of decisions.
	AuditLog = core.AuditLog
	// AuditEntry is one sealed audit record.
	AuditEntry = core.AuditEntry
)

// Response actions.
const (
	ActionAllow = core.ActionAllow
	ActionDeny  = core.ActionDeny
	ActionLock  = core.ActionLock
)

// Train fits the per-context (or unified) authentication models from the
// owner's windows and the anonymized population's windows — the cloud
// training module of Section IV-A3.
func Train(legit, impostor []WindowSample, cfg TrainConfig) (*ModelBundle, error) {
	return core.Train(legit, impostor, cfg)
}

// NewAuthenticator assembles the phone-side testing module.
func NewAuthenticator(det *Detector, bundle *ModelBundle) (*Authenticator, error) {
	return core.NewAuthenticator(det, bundle)
}

// TrainOnline initializes the continuously-adapting authenticator: each of
// the owner's windows can be folded into the model in O(M^2) while the
// oldest retained window is exactly unlearned — the fast alternative to
// cloud retraining that Section V-I points at.
func TrainOnline(det *Detector, legit, impostor []WindowSample, cfg OnlineConfig) (*OnlineAuthenticator, error) {
	return core.TrainOnline(det, legit, impostor, cfg)
}

// NewResponseModule builds a response module with the given policy.
func NewResponseModule(policy ResponsePolicy) *ResponseModule {
	return core.NewResponseModule(policy)
}

// NewRetrainMonitor builds a retraining monitor with the paper's
// threshold (epsilon_CS = 0.2).
func NewRetrainMonitor() *RetrainMonitor {
	return core.NewRetrainMonitor()
}

// NewEnrollment builds an enrollment tracker with the paper's defaults.
func NewEnrollment() *Enrollment {
	return core.NewEnrollment()
}

// NewAuditLog builds an empty tamper-evident decision log.
func NewAuditLog() *AuditLog {
	return core.NewAuditLog()
}

// VerifyAuditChain checks an exported audit log's hash chain, returning
// the index of the first corrupted entry or -1 when intact.
func VerifyAuditChain(entries []AuditEntry) int {
	return core.VerifyAuditChain(entries)
}

// UnmarshalModelBundle decodes a bundle downloaded from the server.
func UnmarshalModelBundle(data []byte) (*ModelBundle, error) {
	return core.UnmarshalModelBundle(data)
}

// Transport: the cloud Authentication Server and the watch link.
type (
	// AuthServer is the cloud training service.
	AuthServer = transport.Server
	// AuthServerConfig configures the server.
	AuthServerConfig = transport.ServerConfig
	// AuthClient is the smartphone's view of the server.
	AuthClient = transport.Client
	// AuthClientConfig configures the client.
	AuthClientConfig = transport.ClientConfig
	// TrainParams are the client-side training knobs.
	TrainParams = transport.TrainParams
	// BluetoothLink simulates the lossy watch-to-phone channel.
	BluetoothLink = transport.BluetoothLink
	// AuthServerStats is the server's population and persistence summary.
	AuthServerStats = transport.ServerStats
	// BusyError is the typed train-queue-full rejection; errors.As against
	// it to honour the server's retry hint.
	BusyError = transport.BusyError
	// RedirectError is the typed read-only-follower rejection carrying the
	// leader's client address; errors.As and re-issue the write there.
	RedirectError = transport.RedirectError
	// AuthDecision is the server-side authenticate verdict.
	AuthDecision = transport.AuthDecision
	// AuthSession is a kept-alive client connection: many round trips —
	// including batched authentication — over one dialed, authenticated
	// flow. Create one with AuthClient.NewSession.
	AuthSession = transport.Session
	// AuthStream is a streaming authentication session: the HMAC handshake
	// and model resolution happen once, then raw window frames flow in and
	// decision frames flow out over envelope v2's stream mode. Open one
	// with AuthSession.StartStream.
	AuthStream = transport.Stream
	// WireStats is the wire-protocol slice of AuthServerStats: v2 request,
	// batch-window and stream counters.
	WireStats = transport.WireStats
)

// Autonomous drift-triggered retraining: the server-side closed loop of
// the paper's Fig. 7. Every served authenticate decision updates a
// per-user confidence EWMA; users that sink below the threshold are
// retrained through a coalesced, budgeted scheduler with no client or
// operator action. (RetrainMonitor, above, is the phone-side trigger the
// client flow uses; ServerRetrainConfig drives the cloud-side loop.)
type (
	// ServerRetrainConfig enables and tunes the drift-retraining loop;
	// pass a pointer in AuthServerConfig.Retrain.
	ServerRetrainConfig = retrain.Config
	// ServerRetrainStats is the retrain slice of AuthServerStats.
	ServerRetrainStats = transport.RetrainStats
)

// Durable storage: the server's crash-recoverable population store and
// versioned model registry.
type (
	// PopulationStore is the WAL-backed store of anonymized population
	// windows and published models. Pass one in AuthServerConfig.Store to
	// make the Authentication Server durable across restarts.
	PopulationStore = store.Store
	// StoreOptions tunes the store: shard count (enroll throughput scales
	// with independent WAL shards), snapshot cadence (compaction runs on
	// background workers), model-version retention, and fsync policy.
	StoreOptions = store.Options
	// StoreStats summarizes the store's size and recovery state.
	StoreStats = store.Stats
	// StoreShardStats is one shard's slice of StoreStats.
	StoreShardStats = store.ShardStats
	// CASStats reports the content-addressed chunk store's occupancy
	// (model bundles and snapshot window blobs, deduplicated by chunk).
	CASStats = cas.Stats
	// CASScrubReport is the result of PopulationStore.ScrubCAS: chunk
	// files re-hashed against their names and cross-checked against the
	// live reference set.
	CASScrubReport = cas.ScrubReport
)

// OpenStore creates or recovers a durable population store rooted at dir:
// it loads the latest snapshot, replays the write-ahead log on top
// (truncating any torn tail from a crash), and is then ready for appends.
// The caller owns the store and must Close it after closing any server
// using it.
func OpenStore(dir string, opt StoreOptions) (*PopulationStore, error) {
	return store.Open(dir, opt)
}

// NewAuthServer builds the cloud Authentication Server.
func NewAuthServer(cfg AuthServerConfig) (*AuthServer, error) {
	return transport.NewServer(cfg)
}

// NewAuthClient builds a client for the Authentication Server.
func NewAuthClient(cfg AuthClientConfig) (*AuthClient, error) {
	return transport.NewClient(cfg)
}

// Replication: leader–follower WAL shipping between Authentication
// Servers, so the cloud role of Fig. 1 survives machine loss and scales
// its read traffic across replicas.
type (
	// ReplicationLeader streams the store's WAL to followers.
	ReplicationLeader = replication.Leader
	// ReplicationLeaderConfig configures a leader.
	ReplicationLeaderConfig = replication.LeaderConfig
	// ReplicationFollower applies a leader's stream into a local store.
	ReplicationFollower = replication.Follower
	// ReplicationFollowerConfig configures a follower.
	ReplicationFollowerConfig = replication.FollowerConfig
	// ReplicationStatus is a point-in-time view of either endpoint.
	ReplicationStatus = replication.Status
	// ReplicatedOp describes one mutation applied from the stream.
	ReplicatedOp = store.ReplicatedOp
	// ReplicationInfo is the replication slice of AuthServerStats; wire a
	// provider via AuthServerConfig.ReplicationInfo.
	ReplicationInfo = transport.ReplicationInfo
	// ReplicationFollowerInfo is one follower's progress inside
	// ReplicationInfo.
	ReplicationFollowerInfo = transport.ReplicationFollower
)

// NewReplicationLeader builds the leader side of replication over an
// open population store; call Serve on a separate replication address.
func NewReplicationLeader(cfg ReplicationLeaderConfig) (*ReplicationLeader, error) {
	return replication.NewLeader(cfg)
}

// StartReplicationFollower connects to a leader and keeps the local
// store converged with it until Close or Promote.
func StartReplicationFollower(cfg ReplicationFollowerConfig) (*ReplicationFollower, error) {
	return replication.StartFollower(cfg)
}

// Cluster: multi-leader shard ownership across Authentication Servers.
// Each node owns a subset of the store's FNV shards — it is the only
// node assigning sequence numbers there — and replicates to every peer
// over the full mesh, so write throughput scales with node count while
// reads stay serveable anywhere. Clients route writes by shard with a
// cached, versioned ShardMap (AuthClientConfig.RouteByShard) and chase
// redirects when the map moves under them.
type (
	// ClusterNode is one cluster member: replication leader for its own
	// store, mesh follower of every peer, and the transport server's
	// ShardRouter. Wire it via AuthServerConfig.Router.
	ClusterNode = cluster.Node
	// ClusterNodeConfig configures a node.
	ClusterNodeConfig = cluster.NodeConfig
	// ClusterNodeInfo is one node's address triple as carried in the map.
	ClusterNodeInfo = cluster.NodeInfo
	// ClusterShardMap is the versioned shard→owner routing artifact.
	ClusterShardMap = cluster.ShardMap
	// ClusterHooks observe mesh replication so the serving layer stays in
	// step with the store.
	ClusterHooks = cluster.Hooks
	// ShardMapInfo is the client-facing slice of the shard map, as served
	// over the wire and cached by routing clients.
	ShardMapInfo = transport.ShardMapInfo
	// DriftStateEntry is one user's drift-monitor state (confidence EWMA,
	// windows since last train) as served by the drift-state request.
	DriftStateEntry = transport.DriftStateEntry
)

// NewClusterNode validates the config and builds a cluster node; Start
// it with ClusterHooks pointing at the serving AuthServer.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) {
	return cluster.NewNode(cfg)
}

// BalancedShardMap builds a version-1 map spreading shards round-robin
// across the given nodes — the bootstrap artifact a fresh cluster
// starts from.
func BalancedShardMap(nodes []ClusterNodeInfo, shards int) (*ClusterShardMap, error) {
	return cluster.BalancedMap(nodes, shards)
}

// FetchClusterMap retrieves a peer's current shard map from its control
// endpoint — how a joining node or an operator tool bootstraps.
func FetchClusterMap(ctrlAddr string, key []byte, timeout time.Duration) (*ClusterShardMap, error) {
	return cluster.FetchMap(ctrlAddr, key, timeout)
}

// DetectorRegistryKey is the reserved registry identifier the published
// context detector lives under. It routes like any other key — it
// hashes to exactly one shard, so in a cluster only the node owning
// ClusterShardMap.ShardForUser of this key publishes the detector;
// every other node receives it over the mesh.
const DetectorRegistryKey = store.DetectorKey

// AnonymizeUser maps a device-side user ID to the server-side pseudonym
// under which the population store keys it — the hash routing clients
// shard by.
func AnonymizeUser(userID string) string {
	return transport.AnonymizeUser(userID)
}
