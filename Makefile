# Tier-1 verification gate: everything `make check` runs must pass before
# a change lands. Mirrors what CI would run.

GO ?= go

.PHONY: check build vet fmt test race fuzz

check: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (wire protocol + WAL decoder).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzOpenWAL -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzEnvelopeOpen -fuzztime=10s ./internal/transport/
