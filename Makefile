# Tier-1 verification gate: everything `make check` runs must pass before
# a change lands. Mirrors what CI would run.

GO ?= go

.PHONY: check build vet fmt test race fuzz bench bench-auth bench-wire bench-replication bench-cluster bench-cas bench-fleet race-pool race-replication race-retrain race-cas race-cluster check-scenarios

check: build vet fmt race race-pool race-replication race-retrain race-cas race-cluster check-scenarios

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (wire protocol + WAL decoder +
# binary codec).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeBinaryPayload -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeBinarySnapshot -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzOpenWAL -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzSnapshotDelta -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzCASBlob -fuzztime=10s ./internal/cas/
	$(GO) test -run=Fuzz -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzEnvelopeOpen -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzEnvelopeV2 -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzBatchAuthPayload -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzReplFrame -fuzztime=10s ./internal/replication/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeDriftStates -fuzztime=10s ./internal/retrain/
	$(GO) test -run=Fuzz -fuzz=FuzzScenarioConfig -fuzztime=10s ./internal/fleet/
	$(GO) test -run=Fuzz -fuzz=FuzzShardMap -fuzztime=10s ./internal/cluster/

# Smoke-run the store benchmarks under the race detector: one iteration
# each, so the hot-path assertions (recovered counts, parallel enroll)
# execute with full instrumentation without turning CI into a perf run.
# Baseline numbers live in BENCH_store.json (recorded with -benchtime
# high enough to be stable; see the file's "how" field).
bench:
	$(GO) test -race -run=xxx -bench='BenchmarkStore|BinaryRecord' -benchtime=1x ./internal/store/ .

# Authentication hot-path benchmarks (FFT plan, feature extraction, the
# authenticate fast path, end-to-end window, and KRR training as an
# untouched control). Before/after baselines live in BENCH_auth.json;
# re-run this target and update the "after" column when the hot path
# changes.
bench-auth:
	$(GO) test -run=xxx -bench='BenchmarkFFT300$$|BenchmarkFeatureExtraction6sWindow$$|BenchmarkAuthenticateWindow$$|BenchmarkEndToEndWindow$$|BenchmarkKRRTrain$$|BenchmarkIncrementalVsColdRetrain$$' -benchmem -benchtime=200x .

# Wire-level per-window benchmarks: the four ways a window crosses the
# wire (v1 JSON request, v2 binary request, v2 batch burst, v2 stream)
# against one trained in-process server. Every bench iterates per window,
# so the ns/op columns compare directly; the wire block in
# BENCH_auth.json records the spread.
bench-wire:
	$(GO) test -run=xxx -bench='BenchmarkWireAuth' -benchmem ./internal/transport/

# Focused race smoke over the shared FFT plan table and the server's
# bounded train worker pool — the two concurrency surfaces of the hot
# path. Fast enough for the tier-1 gate even though `race` already
# covers these packages; this pins the named hammer tests so a future
# test-file reshuffle cannot silently drop them.
race-pool:
	$(GO) test -race -run='TestTrainBackpressure|TestTrainPoolConcurrentHammer|TestStreamHammerConcurrentClose' ./internal/transport/
	$(GO) test -race -run='TestPlanConcurrentSharing' ./internal/dsp/

# Replication hammer under the race detector: concurrent enrollments
# racing a cold follower's catch-up exercise the subscribe-before-scan
# overlap, the per-connection queues, and the shard-lock notify path.
# Pinned by name for the same reason as race-pool.
race-replication:
	$(GO) test -race -run='TestReplicationHammer|TestFollowerCrashRestartMidStream' ./internal/replication/

# Drift-retraining hammer under the race detector: concurrent
# authenticates drive the per-user drift monitor while the scheduler
# coalesces candidates and runs retrains through the training pool, plus
# the scheduler's own offer/dispatch hammer. Pinned by name like
# race-pool so a test reshuffle cannot silently drop them.
race-retrain:
	$(GO) test -race -run='TestRetrainRaceHammer' ./internal/transport/
	$(GO) test -race -run='TestRetrainSchedulerHammer' ./internal/retrain/

# Content-addressed store hammer under the race detector: concurrent
# publishes, sweeps, and reads cross the shard/CAS refcount boundary —
# the chunk-lifetime invariant (refs ∪ pins ∪ protect) only holds if
# every transition is correctly locked. Pinned by name like race-pool.
race-cas:
	$(GO) test -race -run='TestConcurrentPutSweep' ./internal/cas/
	$(GO) test -race -run='TestCASRaceHammer' ./internal/store/

# Shard-handoff hammer under the race detector: concurrent routed
# writes race a live shard acquisition between two full cluster nodes —
# seal, mesh convergence, map publish, and the no-acked-write-lost
# invariant all execute with full instrumentation. Pinned by name like
# race-pool.
race-cluster:
	$(GO) test -race -run='TestHandoffUnderConcurrentWrites' ./internal/cluster/

# Follower catch-up throughput: a cold follower replaying a seeded
# leader's log over TCP. Baseline lives in BENCH_store.json.
bench-replication:
	$(GO) test -run=xxx -bench=BenchmarkFollowerCatchUp -benchtime=50x ./internal/replication/

# Cluster-wide enroll throughput: the same 3-process durable write load
# against a single-leader layout (one leader + two replicas) and a
# 3-node shard-ownership cluster, both replicating every record to three
# stores. Same-invocation comparison is essential — this host's ambient
# fsync latency drifts minute to minute — so both topologies run from
# one command. Numbers land in BENCH_store.json's cluster block.
bench-cluster:
	$(GO) test -run=xxx -bench=BenchmarkClusterEnroll -benchtime=3s -count=3 -timeout=30m ./internal/cluster/

# Content-addressed storage benchmarks: chunk-level dedup across
# keep-last-5 incrementally retrained models (the dedup-x metric must
# hold >=3x) and the lagging-follower delta reconnect (delta-bytes/op vs
# full-bytes/op). Numbers land in BENCH_store.json's cas block.
bench-cas:
	$(GO) test -run=xxx -bench=BenchmarkCASDedupKeepLast5 -benchtime=10x ./internal/store/
	$(GO) test -run=xxx -bench=BenchmarkDeltaCatchUp -benchtime=50x ./internal/replication/

# Scenario regression suite under the race detector: every shipped
# profile in scenarios/ runs at smoke scale (200-identity fleet, 30 s op
# budget) against an in-process topology — the follower one fails over
# mid-run, the cluster one rebalances shard ownership onto a spare node
# mid-run — and must hold its SLO. Pinned by name like race-pool.
check-scenarios:
	$(GO) test -race -run='TestScenarioSmoke|TestFailoverUnderLoad|TestRebalanceUnderLoad' ./internal/fleet/

# Fleet-scale load benchmark: replays every shipped scenario through
# cmd/loadgen and refreshes BENCH_fleet.json. The profiles carry full
# fleet sizes (1e5..2.5e5 identities); FLEET_USERS/FLEET_DURATION scale
# the run so the default completes in minutes — raise them for a
# long-form run (e.g. FLEET_USERS=200000 FLEET_DURATION=60).
FLEET_USERS ?= 4000
FLEET_DURATION ?= 20
bench-fleet:
	$(GO) run ./cmd/loadgen -scenarios scenarios -out BENCH_fleet.json \
		-users $(FLEET_USERS) -duration $(FLEET_DURATION)
