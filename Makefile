# Tier-1 verification gate: everything `make check` runs must pass before
# a change lands. Mirrors what CI would run.

GO ?= go

.PHONY: check build vet fmt test race fuzz bench

check: build vet fmt race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail if it prints anything.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (wire protocol + WAL decoder +
# binary codec).
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeBinaryPayload -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeBinarySnapshot -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzOpenWAL -fuzztime=10s ./internal/store/
	$(GO) test -run=Fuzz -fuzz=FuzzReadFrame -fuzztime=10s ./internal/transport/
	$(GO) test -run=Fuzz -fuzz=FuzzEnvelopeOpen -fuzztime=10s ./internal/transport/

# Smoke-run the store benchmarks under the race detector: one iteration
# each, so the hot-path assertions (recovered counts, parallel enroll)
# execute with full instrumentation without turning CI into a perf run.
# Baseline numbers live in BENCH_store.json (recorded with -benchtime
# high enough to be stable; see the file's "how" field).
bench:
	$(GO) test -race -run=xxx -bench='BenchmarkStore|BinaryRecord' -benchtime=1x ./internal/store/ .
