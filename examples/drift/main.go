// Behavioural drift and automatic retraining (Section V-I): the owner's
// habits change over days; the confidence score decays until the monitor
// triggers a retrain, after which it recovers. An attacker's confidence
// score stays negative and can never trigger retraining.
package main

import (
	"fmt"
	"log"

	"smarteryou"
)

func main() {
	pop, err := smarteryou.NewPopulation(8, 22)
	if err != nil {
		log.Fatal(err)
	}
	owner := pop.Users[3] // a user whose habits drift substantially over the two weeks

	// Impostor population and context detector.
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 120, Sessions: 2, Seed: int64(500 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		impostorData = append(impostorData, samples...)
	}
	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Enroll at day 0 and train.
	trainCfg := smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: 2,
	}
	enroll := collectAtDay(owner, 0, 600)
	bundle, err := smarteryou.Train(enroll, impostorData, trainCfg)
	if err != nil {
		log.Fatal(err)
	}
	auth, err := smarteryou.NewAuthenticator(det, bundle)
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the drift threshold to this user's enrollment-time
	// confidence: a fixed epsilon (the paper uses 0.2) only makes sense
	// relative to where the healthy scores sit.
	var enrollCS float64
	for _, w := range enroll {
		d, err := auth.Authenticate(w)
		if err != nil {
			log.Fatal(err)
		}
		enrollCS += d.Score
	}
	enrollCS /= float64(len(enroll))
	monitor := smarteryou.NewRetrainMonitor()
	monitor.Threshold = 0.4 * enrollCS
	monitor.SustainWindows = 15
	response := smarteryou.NewResponseModule(smarteryou.ResponsePolicy{DenyAfter: 1, LockAfter: 4})
	fmt.Printf("enrollment mean CS %.3f; retrain threshold set to %.3f\n\n", enrollCS, monitor.Threshold)

	// Two retraining paths, both from Section V-I / IV-B:
	//  - gradual drift: the confidence-score monitor fires while the user
	//    is still being accepted;
	//  - abrupt change: the user gets falsely locked out, re-authenticates
	//    explicitly (password / multi-factor), and that explicit proof of
	//    identity authorizes retraining with her latest windows.
	retrain := func(windows []smarteryou.WindowSample) {
		newBundle, err := smarteryou.Train(windows, impostorData, trainCfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := auth.SwapBundle(newBundle); err != nil {
			log.Fatal(err)
		}
		monitor.Reset()
	}

	fmt.Println("Watch the feedback loop: early lockouts retrain the cold-start model,")
	fmt.Println("and once the model has caught up with the drifting user the confidence")
	fmt.Println("score climbs and lockouts stop.")
	fmt.Println()
	fmt.Println("day   mean confidence score")
	for day := 0.0; day <= 12; day++ {
		windows := collectAtDay(owner, day, 300)
		var sum float64
		note := ""
		for _, w := range windows {
			d, err := auth.Authenticate(w)
			if err != nil {
				log.Fatal(err)
			}
			sum += d.Score
			if response.Observe(d) == smarteryou.ActionLock {
				// False lockout of the owner: explicit re-authentication
				// proves identity and authorizes retraining.
				retrain(windows)
				response.Unlock()
				note = "  <-- false lockout: explicit re-auth + retrain"
			}
			if monitor.Observe(d) {
				retrain(windows)
				note = "  <-- drift detected by CS monitor: retrained"
			}
		}
		fmt.Printf("%4.0f  %8.3f%s\n", day, sum/float64(len(windows)), note)
	}

	// The attacker cannot trigger retraining: his scores are negative.
	attacker := pop.Users[2]
	attackerWindows := collectAtDay(attacker, 12, 300)
	var atkSum float64
	for _, w := range attackerWindows {
		d, err := auth.Authenticate(w)
		if err != nil {
			log.Fatal(err)
		}
		atkSum += d.Score
		if monitor.Observe(d) {
			log.Fatal("attacker must not trigger retraining")
		}
	}
	fmt.Printf("\nattacker mean confidence score at day 12: %.3f (never triggers retraining)\n",
		atkSum/float64(len(attackerWindows)))
}

// collectAtDay records seconds of usage (both contexts) at a drift day.
func collectAtDay(u *smarteryou.User, day, seconds float64) []smarteryou.WindowSample {
	var out []smarteryou.WindowSample
	for ci, ctx := range []smarteryou.Context{smarteryou.ContextStationaryUse, smarteryou.ContextMovingUse} {
		stream := func(dev smarteryou.Device) *smarteryou.Stream {
			s, err := smarteryou.Session{
				User:    u,
				Context: ctx,
				Day:     day,
				Seconds: seconds / 2,
				Seed:    int64(day*1000) + int64(ci)*17 + 3,
			}.Generate(dev)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}
		phoneWins, err := smarteryou.ExtractWindows(stream(smarteryou.DevicePhone), 6)
		if err != nil {
			log.Fatal(err)
		}
		watchWins, err := smarteryou.ExtractWindows(stream(smarteryou.DeviceWatch), 6)
		if err != nil {
			log.Fatal(err)
		}
		n := len(phoneWins)
		if len(watchWins) < n {
			n = len(watchWins)
		}
		for k := 0; k < n; k++ {
			out = append(out, smarteryou.WindowSample{
				UserID:  u.ID,
				Context: ctx,
				Day:     day,
				Phone:   phoneWins[k],
				Watch:   watchWins[k],
			})
		}
	}
	return out
}
