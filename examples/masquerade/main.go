// Masquerading attack (Section V-G): an adversary who has watched and
// recorded the victim tries to imitate the victim's behaviour. This
// example shows how long mimics of increasing fidelity survive before the
// system de-authenticates them.
package main

import (
	"fmt"
	"log"

	"smarteryou"
	"smarteryou/internal/attack"
)

func main() {
	pop, err := smarteryou.NewPopulation(8, 99)
	if err != nil {
		log.Fatal(err)
	}
	victim := pop.Users[0]
	auth := buildAuthenticator(pop, victim)

	fmt.Println("masquerading attack vs mimicry fidelity")
	fmt.Printf("%-10s %14s %14s %14s\n", "fidelity", "caught<=6s", "caught<=18s", "mean time")
	for _, fidelity := range []float64{0.0, 0.5, 0.9, 1.0} {
		res, err := attack.Run(auth, attack.Scenario{
			Victim:         victim,
			Attackers:      pop.Users[1:6],
			Fidelity:       fidelity,
			HorizonSeconds: 60,
			WindowSeconds:  6,
			Trials:         4,
			Seed:           2027,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.1f %13.0f%% %13.0f%% %12.1fs\n",
			fidelity,
			res.FractionDetectedBy(6)*100,
			res.FractionDetectedBy(18)*100,
			res.MeanDetectionSeconds())
	}

	// The survival curve at the paper's fidelity (Fig. 6).
	res, err := attack.Run(auth, attack.Scenario{
		Victim:         victim,
		Attackers:      pop.Users[1:6],
		Fidelity:       0.9,
		HorizonSeconds: 60,
		WindowSeconds:  6,
		Trials:         4,
		Seed:           2028,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsurvival curve at fidelity 0.9:")
	times, fractions := res.SurvivalCurve()
	for i, t := range times {
		fmt.Printf("t=%2.0fs  %5.1f%% of adversaries still have access\n", t, fractions[i]*100)
	}
}

func buildAuthenticator(pop *smarteryou.Population, victim *smarteryou.User) *smarteryou.Authenticator {
	victimData, err := smarteryou.Collect(victim, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 150, Sessions: 3, Days: 13, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users {
		if u == victim {
			continue
		}
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 150, Sessions: 2, Seed: int64(300 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		impostorData = append(impostorData, samples...)
	}
	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := smarteryou.Train(victimData, impostorData, smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	auth, err := smarteryou.NewAuthenticator(det, bundle)
	if err != nil {
		log.Fatal(err)
	}
	return auth
}
