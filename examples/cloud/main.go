// Cloud deployment (Fig. 1): an Authentication Server runs the training
// module; the phone enrolls over TCP, downloads the context-detection
// model and its authentication models, and then authenticates entirely
// on-device (no network needed at test time). The smartwatch stream
// arrives over a lossy simulated Bluetooth link.
package main

import (
	"fmt"
	"log"

	"smarteryou"
)

func main() {
	key := []byte("demo-pre-shared-key")
	pop, err := smarteryou.NewPopulation(8, 23)
	if err != nil {
		log.Fatal(err)
	}
	owner := pop.Users[0]

	// --- Server side: context detector + anonymized population store. ---
	population := make(map[string][]smarteryou.WindowSample)
	var ctxTrain []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 120, Sessions: 2, Seed: int64(700 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		population[u.ID] = samples
		ctxTrain = append(ctxTrain, samples...)
	}
	detector, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
		Key:      key,
		Detector: detector,
		Logf:     func(format string, args ...any) { log.Printf("[server] "+format, args...) },
	})
	if err != nil {
		log.Fatal(err)
	}
	server.SeedPopulation(population)
	addr, err := server.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := server.Close(); err != nil {
			log.Printf("server close: %v", err)
		}
	}()
	fmt.Printf("authentication server listening on %s\n", addr)

	// --- Phone side. ---
	client, err := smarteryou.NewAuthClient(smarteryou.AuthClientConfig{
		Addr: addr.String(),
		Key:  key,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Enrollment phase: collect until the feature distribution converges.
	enrollment := smarteryou.NewEnrollment()
	enrollData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 300, Sessions: 3, Days: 6, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range enrollData {
		if enrollment.Add(s) {
			break
		}
	}
	fmt.Printf("enrollment converged after %d windows\n", enrollment.Count())

	stored, err := client.Enroll(owner.ID, enrollment.Samples())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded %d windows to the training module\n", stored)

	// Download the context detector and the trained models.
	downloadedDetector, err := client.FetchDetector()
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := client.Train(owner.ID, smarteryou.TrainParams{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	auth, err := smarteryou.NewAuthenticator(downloadedDetector, bundle)
	if err != nil {
		log.Fatal(err)
	}
	users, windows, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server population: %d users, %d windows (anonymized)\n", users, windows)

	// Test time: the watch stream crosses a lossy Bluetooth link before
	// feature extraction; authentication is fully on-device.
	link := smarteryou.BluetoothLink{FrameSamples: 10, DropRate: 0.02, Seed: 3}
	session := smarteryou.Session{
		User: owner, Context: smarteryou.ContextMovingUse, Seconds: 60, Seed: 77,
	}
	phoneStream, err := session.Generate(smarteryou.DevicePhone)
	if err != nil {
		log.Fatal(err)
	}
	watchRaw, err := session.Generate(smarteryou.DeviceWatch)
	if err != nil {
		log.Fatal(err)
	}
	watchStream, err := link.Transmit(watchRaw)
	if err != nil {
		log.Fatal(err)
	}
	phoneWins, err := smarteryou.ExtractWindows(phoneStream, 6)
	if err != nil {
		log.Fatal(err)
	}
	watchWins, err := smarteryou.ExtractWindows(watchStream, 6)
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for k := range phoneWins {
		d, err := auth.Authenticate(smarteryou.WindowSample{
			UserID:  owner.ID,
			Context: smarteryou.ContextMovingUse,
			Phone:   phoneWins[k],
			Watch:   watchWins[k],
		})
		if err != nil {
			log.Fatal(err)
		}
		if d.Accepted {
			accepted++
		}
	}
	fmt.Printf("owner authenticated in %d/%d windows over the lossy watch link\n",
		accepted, len(phoneWins))
}
