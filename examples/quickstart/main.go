// Quickstart: enroll a user, train the SmarterYou models, and
// authenticate both the owner and a stranger.
package main

import (
	"fmt"
	"log"

	"smarteryou"
)

func main() {
	// A synthetic cohort stands in for real sensor data: user 0 will be
	// the device owner, the rest form the anonymized impostor population.
	pop, err := smarteryou.NewPopulation(10, 42)
	if err != nil {
		log.Fatal(err)
	}
	owner := pop.Users[0]

	// Enrollment: collect two weeks of free-form usage windows (6 s each)
	// from the owner's phone and watch.
	ownerData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds:  6,
		SessionSeconds: 120,
		Sessions:       3,
		Days:           13,
		Seed:           1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %q with %d feature windows\n", owner.ID, len(ownerData))

	// The impostor population (anonymized on the real server).
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds:  6,
			SessionSeconds: 120,
			Sessions:       2,
			Seed:           int64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		impostorData = append(impostorData, samples...)
	}

	// The user-agnostic context detector is trained on other users only.
	detector, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Train the per-context authentication models (the paper's best
	// configuration: phone + watch, context-specific KRR).
	bundle, err := smarteryou.Train(ownerData, impostorData, smarteryou.TrainConfig{
		Mode:        smarteryou.Mode{Combined: true, UseContext: true},
		MaxPerClass: 400,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	auth, err := smarteryou.NewAuthenticator(detector, bundle)
	if err != nil {
		log.Fatal(err)
	}

	// Fresh windows from the owner must authenticate...
	ownerTest, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: 999,
	})
	if err != nil {
		log.Fatal(err)
	}
	// ...and fresh windows from a stranger must not.
	stranger := pop.Users[3]
	strangerTest, err := smarteryou.Collect(stranger, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: 998,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(who string, samples []smarteryou.WindowSample) {
		accepted := 0
		for _, s := range samples {
			d, err := auth.Authenticate(s)
			if err != nil {
				log.Fatal(err)
			}
			if d.Accepted {
				accepted++
			}
		}
		fmt.Printf("%-10s accepted in %2d/%2d windows\n", who, accepted, len(samples))
	}
	report("owner", ownerTest)
	report("stranger", strangerTest)

	// Per-window detail for one owner window: context + confidence score.
	d, err := auth.Authenticate(ownerTest[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample decision: context=%v (confidence %.2f), score=%.3f, accepted=%v\n",
		d.Context, d.ContextConfidence, d.Score, d.Accepted)
}
