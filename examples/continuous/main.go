// Continuous authentication with the response module: the owner uses the
// phone (stationary, then walking), then the phone is snatched by a thief
// who tries to keep using it. The response module denies access and locks
// the device within a few windows.
package main

import (
	"fmt"
	"log"

	"smarteryou"
)

func main() {
	pop, err := smarteryou.NewPopulation(8, 7)
	if err != nil {
		log.Fatal(err)
	}
	owner, thief := pop.Users[0], pop.Users[5]

	auth := buildAuthenticator(pop, owner)
	response := smarteryou.NewResponseModule(smarteryou.ResponsePolicy{
		DenyAfter: 1, // one rejected window denies critical-data access
		LockAfter: 3, // three in a row lock the device (18 s at 6 s windows)
	})

	// Timeline: owner stationary -> owner walking -> THEFT -> thief walking.
	type phase struct {
		who     *smarteryou.User
		label   string
		context smarteryou.Context
		seconds float64
		seed    int64
	}
	timeline := []phase{
		{owner, "owner sitting", smarteryou.ContextStationaryUse, 60, 11},
		{owner, "owner walking", smarteryou.ContextMovingUse, 60, 12},
		{thief, "THIEF walking", smarteryou.ContextMovingUse, 60, 13},
	}

	clock := 0.0
	for _, p := range timeline {
		fmt.Printf("\n--- %s ---\n", p.label)
		samples := collect(p.who, p.context, p.seconds, p.seed)
		for _, s := range samples {
			d, err := auth.Authenticate(s)
			if err != nil {
				log.Fatal(err)
			}
			action := response.Observe(d)
			clock += 6
			fmt.Printf("t=%4.0fs ctx=%-10v score=%+6.2f accepted=%-5v -> %v\n",
				clock, d.Context, d.Score, d.Accepted, action)
			if action == smarteryou.ActionLock {
				fmt.Println("device locked: explicit re-authentication required")
				break
			}
		}
		if response.Locked() {
			break
		}
	}
	if !response.Locked() {
		log.Fatal("expected the thief to be locked out")
	}

	// The owner unlocks explicitly (password / fingerprint) and continues.
	response.Unlock()
	fmt.Println("\n--- owner back after explicit unlock ---")
	for i, s := range collect(owner, smarteryou.ContextStationaryUse, 30, 14) {
		d, err := auth.Authenticate(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: accepted=%v -> %v\n", i, d.Accepted, response.Observe(d))
	}
}

// buildAuthenticator trains the full stack for the owner against the rest
// of the cohort.
func buildAuthenticator(pop *smarteryou.Population, owner *smarteryou.User) *smarteryou.Authenticator {
	ownerData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 120, Sessions: 3, Days: 13, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users {
		if u == owner {
			continue
		}
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 120, Sessions: 2, Seed: int64(200 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		impostorData = append(impostorData, samples...)
	}
	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := smarteryou.Train(ownerData, impostorData, smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	auth, err := smarteryou.NewAuthenticator(det, bundle)
	if err != nil {
		log.Fatal(err)
	}
	return auth
}

// collect records one session and returns its feature windows.
func collect(u *smarteryou.User, ctx smarteryou.Context, seconds float64, seed int64) []smarteryou.WindowSample {
	samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
		WindowSeconds:  6,
		SessionSeconds: seconds,
		Sessions:       1,
		Contexts:       []smarteryou.Context{ctx},
		Seed:           seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return samples
}
