package smarteryou_test

import (
	"testing"

	"smarteryou"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: population → collection → context detector → training
// → authentication → response → online adaptation.
func TestFacadeEndToEnd(t *testing.T) {
	pop, err := smarteryou.NewPopulation(5, 99)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	owner := pop.Users[0]

	ownerData, err := smarteryou.Collect(owner, smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 90, Sessions: 2, Seed: 1,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	var impostorData []smarteryou.WindowSample
	for i, u := range pop.Users[1:] {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 90, Sessions: 1, Seed: int64(10 + i),
		})
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		impostorData = append(impostorData, samples...)
	}

	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(impostorData), smarteryou.DetectorConfig{Seed: 1})
	if err != nil {
		t.Fatalf("TrainContextDetector: %v", err)
	}
	bundle, err := smarteryou.Train(ownerData, impostorData, smarteryou.TrainConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
		Seed: 2,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	auth, err := smarteryou.NewAuthenticator(det, bundle)
	if err != nil {
		t.Fatalf("NewAuthenticator: %v", err)
	}
	response := smarteryou.NewResponseModule(smarteryou.ResponsePolicy{})
	monitor := smarteryou.NewRetrainMonitor()

	accepted := 0
	for _, s := range ownerData {
		d, err := auth.Authenticate(s)
		if err != nil {
			t.Fatalf("Authenticate: %v", err)
		}
		if d.Accepted {
			accepted++
		}
		if action := response.Observe(d); action == smarteryou.ActionLock {
			t.Fatalf("owner locked out")
		}
		monitor.Observe(d)
	}
	if frac := float64(accepted) / float64(len(ownerData)); frac < 0.85 {
		t.Errorf("owner accepted in %v of windows", frac)
	}

	// Model bundle round trip through the wire format.
	blob, err := bundle.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if _, err := smarteryou.UnmarshalModelBundle(blob); err != nil {
		t.Fatalf("UnmarshalModelBundle: %v", err)
	}

	// Online adaptation through the facade.
	online, err := smarteryou.TrainOnline(det, ownerData, impostorData, smarteryou.OnlineConfig{
		Mode: smarteryou.Mode{Combined: true, UseContext: true},
	})
	if err != nil {
		t.Fatalf("TrainOnline: %v", err)
	}
	if err := online.Adapt(ownerData[0]); err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	if _, err := online.Authenticate(ownerData[0]); err != nil {
		t.Fatalf("online Authenticate: %v", err)
	}
}

// TestFacadeEnrollment exercises the enrollment convergence tracker.
func TestFacadeEnrollment(t *testing.T) {
	pop, err := smarteryou.NewPopulation(1, 5)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	samples, err := smarteryou.Collect(pop.Users[0], smarteryou.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 120, Sessions: 2, Seed: 9,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	e := smarteryou.NewEnrollment()
	e.MaxSamples = 30
	done := false
	for _, s := range samples {
		if e.Add(s) {
			done = true
			break
		}
	}
	if !done {
		t.Errorf("enrollment never completed")
	}
}

// TestFacadeSensing exercises the signal-level API: sessions, devices,
// downsampling, the Bluetooth link, and feature extraction.
func TestFacadeSensing(t *testing.T) {
	pop, err := smarteryou.NewPopulation(2, 6)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	stream, err := smarteryou.Session{
		User:    pop.Users[0],
		Context: smarteryou.ContextMovingUse,
		Seconds: 12,
		Seed:    3,
	}.Generate(smarteryou.DeviceWatch)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if stream.Rate != smarteryou.SampleRate {
		t.Errorf("rate = %v, want %v", stream.Rate, smarteryou.SampleRate)
	}
	lossy, err := smarteryou.BluetoothLink{DropRate: 0.05, Seed: 1}.Transmit(stream)
	if err != nil {
		t.Fatalf("Transmit: %v", err)
	}
	wins, err := smarteryou.ExtractWindows(lossy, 6)
	if err != nil {
		t.Fatalf("ExtractWindows: %v", err)
	}
	if len(wins) != 2 {
		t.Errorf("got %d windows, want 2", len(wins))
	}
	// Mimic through the facade.
	blended := smarteryou.Mimic(pop.Users[1].Params, pop.Users[0].Params, 0.9)
	if blended == pop.Users[1].Params {
		t.Errorf("mimicry should alter the attacker's parameters")
	}
}

// TestFacadeDurableStore exercises the persistence API end to end through
// the facade: open a store, collect and enroll through a durable server,
// restart both, and train from the recovered population alone.
func TestFacadeDurableStore(t *testing.T) {
	dir := t.TempDir()
	pop, err := smarteryou.NewPopulation(3, 41)
	if err != nil {
		t.Fatalf("NewPopulation: %v", err)
	}
	byUser := make(map[string][]smarteryou.WindowSample)
	var ctxTrain []smarteryou.WindowSample
	for i, u := range pop.Users {
		samples, err := smarteryou.Collect(u, smarteryou.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: int64(20 + i),
		})
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		byUser[u.ID] = samples
		ctxTrain = append(ctxTrain, samples...)
	}
	det, err := smarteryou.TrainContextDetector(
		smarteryou.ContextTrainingData(ctxTrain), smarteryou.DetectorConfig{Seed: 1, Trees: 10})
	if err != nil {
		t.Fatalf("TrainContextDetector: %v", err)
	}

	key := []byte("facade-store-key")
	runServer := func(seed map[string][]smarteryou.WindowSample) (*smarteryou.AuthServer, *smarteryou.PopulationStore, string) {
		store, err := smarteryou.OpenStore(dir, smarteryou.StoreOptions{})
		if err != nil {
			t.Fatalf("OpenStore: %v", err)
		}
		server, err := smarteryou.NewAuthServer(smarteryou.AuthServerConfig{
			Key: key, Detector: det, Store: store,
		})
		if err != nil {
			t.Fatalf("NewAuthServer: %v", err)
		}
		if seed != nil {
			server.SeedPopulation(seed)
		}
		addr, err := server.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		return server, store, addr.String()
	}

	// First lifetime: seed everyone, then stop.
	server, store, _ := runServer(byUser)
	if err := server.Close(); err != nil {
		t.Fatalf("Close server: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("Close store: %v", err)
	}

	// Second lifetime: recover, train without any enrollment traffic.
	server, store, addr := runServer(nil)
	defer func() {
		if err := server.Close(); err != nil {
			t.Errorf("Close server: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Errorf("Close store: %v", err)
		}
	}()
	if got := store.Stats().Users; got != 3 {
		t.Fatalf("recovered %d users, want 3", got)
	}
	client, err := smarteryou.NewAuthClient(smarteryou.AuthClientConfig{Addr: addr, Key: key})
	if err != nil {
		t.Fatalf("NewAuthClient: %v", err)
	}
	owner := pop.Users[0].ID
	bundle, version, err := client.TrainVersioned(owner, smarteryou.TrainParams{Seed: 5})
	if err != nil {
		t.Fatalf("TrainVersioned from recovered population: %v", err)
	}
	if version != 1 || bundle == nil {
		t.Errorf("trained (bundle=%v, version=%d), want a v1 bundle", bundle != nil, version)
	}
	if _, fetchedVersion, err := client.FetchModel(owner, 0); err != nil || fetchedVersion != 1 {
		t.Errorf("FetchModel = (v%d, %v), want v1", fetchedVersion, err)
	}
	stats, err := client.FullStats()
	if err != nil {
		t.Fatalf("FullStats: %v", err)
	}
	if !stats.Persistent || stats.WALBytes == 0 {
		t.Errorf("stats = %+v, want persistence reported", stats)
	}
}
