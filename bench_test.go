// Benchmarks: one per paper artifact (tables I-VIII, figures 2-7) plus the
// component and ablation benches DESIGN.md calls out. Artifact benches run
// the same code paths as `cmd/experiments -run <id>` at the reduced quick
// scale so `go test -bench=. -benchmem` stays tractable; the paper-scale
// numbers in EXPERIMENTS.md come from the cmd/experiments harness.
package smarteryou_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"smarteryou/internal/attack"
	"smarteryou/internal/core"
	"smarteryou/internal/ctxdetect"
	"smarteryou/internal/dsp"
	"smarteryou/internal/experiments"
	"smarteryou/internal/features"
	"smarteryou/internal/ml"
	"smarteryou/internal/sensing"
	"smarteryou/internal/stats"
	"smarteryou/internal/store"
)

var (
	benchDataOnce sync.Once
	benchData     *experiments.Data
)

// quickBenchData builds (once) the shared reduced campaign substrate and
// pre-warms the window caches so artifact benches measure evaluation, not
// first-touch data generation.
func quickBenchData(b *testing.B) *experiments.Data {
	b.Helper()
	benchDataOnce.Do(func() {
		d, err := experiments.NewData(experiments.QuickConfig())
		if err != nil {
			b.Fatalf("NewData: %v", err)
		}
		for i := 0; i < d.Cfg.Users; i++ {
			if _, err := d.UserWindows(i, 6); err != nil {
				b.Fatalf("warm cache: %v", err)
			}
		}
		benchData = d
	})
	return benchData
}

// --- Artifact benches: one per table and figure. ---

func BenchmarkTable1_RelatedWorkRow(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_FisherScores(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_FeatureCorrelations(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable3(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_CrossDeviceCorrelations(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable4(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_ContextDetection(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_MLComparison(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable6(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7_Headline(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		// Table VII is memoized inside Data; benchmark the full evaluation
		// path instead of the memo hit.
		if _, err := d.EvaluateAuth(experiments.EvalOptions{
			Devices:    experiments.DeviceCombination,
			UseContext: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8_PowerModel(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable8(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2_Demographics(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure2(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_KSTests(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure3(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4_WindowSweep(b *testing.B) {
	d := quickBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure4Sweep(d, []float64{6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_DataSizeSweep(b *testing.B) {
	d := quickBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5Sweep(d, []float64{400}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_MasqueradeCampaign(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure6(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7_DriftAndRetraining(b *testing.B) {
	d := quickBenchData(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component benches: the real per-window costs of Section V-H. ---

// benchStreams returns a fixed 60 s two-device recording.
func benchStreams(b *testing.B) (*sensing.Stream, *sensing.Stream) {
	b.Helper()
	pop, err := sensing.NewPopulation(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	sess := sensing.Session{User: pop.Users[0], Context: sensing.ContextMovingUse, Seconds: 60, Seed: 3}
	phone, err := sess.Generate(sensing.DevicePhone)
	if err != nil {
		b.Fatal(err)
	}
	watch, err := sess.Generate(sensing.DeviceWatch)
	if err != nil {
		b.Fatal(err)
	}
	return phone, watch
}

func BenchmarkSensorGeneration(b *testing.B) {
	pop, err := sensing.NewPopulation(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sensing.Session{
			User: pop.Users[0], Context: sensing.ContextMovingUse, Seconds: 6, Seed: int64(i),
		}.Generate(sensing.DevicePhone)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFeatureExtraction6sWindow(b *testing.B) {
	phone, _ := benchStreams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := features.ExtractWindows(phone, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT300(b *testing.B) {
	x := make([]float64, 300) // one 6 s window at 50 Hz
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dsp.AmplitudeSpectrum(x, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKSTest(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.KSTest(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// paperSizedTrainingSet builds the N=720, M=28 problem of Section V-H1.
func paperSizedTrainingSet(b *testing.B) ([][]float64, []bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	x := make([][]float64, 720)
	y := make([]bool, 720)
	for i := range x {
		row := make([]float64, 28)
		base := -1.0
		if i%2 == 0 {
			base = 1.0
		}
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
		x[i] = row
		y[i] = i%2 == 0
	}
	return x, y
}

func BenchmarkKRRTrain(b *testing.B) {
	x, y := paperSizedTrainingSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		krr := ml.NewKRR(1)
		if err := krr.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: Eq. 7's M x M primal solve vs Eq. 6's N x N dual solve.
func BenchmarkKRRPrimalVsDual(b *testing.B) {
	x, y := paperSizedTrainingSet(b)
	b.Run("primal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			krr := &ml.KRR{Rho: 1, Kernel: ml.IdentityKernel{}, Mode: ml.KRRModePrimal}
			if err := krr.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			krr := &ml.KRR{Rho: 1, Kernel: ml.IdentityKernel{}, Mode: ml.KRRModeDual}
			if err := krr.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSVMTrain(b *testing.B) {
	x, y := paperSizedTrainingSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svm := ml.NewSVM()
		if err := svm.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomForestTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([][]float64, 400)
	labels := make([]string, 400)
	for i := range x {
		row := make([]float64, 14)
		label := "stationary"
		base := 0.0
		if i%2 == 0 {
			label = "moving"
			base = 2.0
		}
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
		x[i] = row
		labels[i] = label
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := ml.NewRandomForest()
		if err := rf.FitClasses(x, labels); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBenchAuthenticator trains a small production stack once.
func buildBenchAuthenticator(b *testing.B) (*core.Authenticator, features.WindowSample) {
	b.Helper()
	pop, err := sensing.NewPopulation(4, 11)
	if err != nil {
		b.Fatal(err)
	}
	perUser := make([][]features.WindowSample, 4)
	for i, u := range pop.Users {
		perUser[i], err = features.Collect(u, features.CollectOptions{
			WindowSeconds: 6, SessionSeconds: 90, Sessions: 1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	var impostor []features.WindowSample
	for i := 1; i < 4; i++ {
		impostor = append(impostor, perUser[i]...)
	}
	det, err := ctxdetect.Train(ctxdetect.FromSamples(impostor), ctxdetect.Config{Seed: 1, Trees: 15})
	if err != nil {
		b.Fatal(err)
	}
	bundle, err := core.Train(perUser[0], impostor, core.TrainConfig{
		Mode: core.Mode{Combined: true, UseContext: true}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	auth, err := core.NewAuthenticator(det, bundle)
	if err != nil {
		b.Fatal(err)
	}
	return auth, perUser[0][0]
}

// BenchmarkAuthenticateWindow measures the paper's "testing time": context
// detection + model dispatch + classification for one 6 s window.
func BenchmarkAuthenticateWindow(b *testing.B) {
	auth, sample := buildBenchAuthenticator(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := auth.Authenticate(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndWindow(b *testing.B) {
	// Feature extraction + authentication: the complete per-window path
	// of the testing module.
	auth, _ := buildBenchAuthenticator(b)
	phone, watch := benchStreams(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw, err := features.ExtractWindows(phone, 6)
		if err != nil {
			b.Fatal(err)
		}
		ww, err := features.ExtractWindows(watch, 6)
		if err != nil {
			b.Fatal(err)
		}
		for k := range pw {
			if _, err := auth.Authenticate(features.WindowSample{
				Context: sensing.ContextMovingUse, Phone: pw[k], Watch: ww[k],
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Ablation: pruned 7-feature set vs the full 9-candidate set.
func BenchmarkFeaturePruning(b *testing.B) {
	d := quickBenchData(b)
	b.Run("pruned7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := d.EvaluateAuth(experiments.EvalOptions{
				Devices:    experiments.DevicePhoneOnly,
				UseContext: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full9", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := d.EvaluateAuth(experiments.EvalOptions{
				Devices:    experiments.DevicePhoneOnly,
				UseContext: true,
				Extract: func(w features.WindowSample) []float64 {
					return w.Phone.FullVector()
				},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkMasqueradeTrial(b *testing.B) {
	auth, _ := buildBenchAuthenticator(b)
	pop, err := sensing.NewPopulation(4, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := attack.Run(auth, attack.Scenario{
			Victim:         pop.Users[0],
			Attackers:      pop.Users[1:2],
			Trials:         1,
			HorizonSeconds: 24,
			Seed:           int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelBundleSerialization(b *testing.B) {
	auth, _ := buildBenchAuthenticator(b)
	_ = auth
	pop, _ := sensing.NewPopulation(2, 13)
	legit, err := features.Collect(pop.Users[0], features.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	impostor, err := features.Collect(pop.Users[1], features.CollectOptions{
		WindowSeconds: 6, SessionSeconds: 60, Sessions: 1, Seed: 6,
	})
	if err != nil {
		b.Fatal(err)
	}
	bundle, err := core.Train(legit, impostor, core.TrainConfig{
		Mode: core.Mode{Combined: true, UseContext: false}, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := bundle.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.UnmarshalModelBundle(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Durable-store benches: the server's enroll hot path. ---

// storeBenchWindows builds n windows of realistic shape (full-precision
// floats in every sensor slot) without running the sensing pipeline.
func storeBenchWindows(user string, n int) []features.WindowSample {
	out := make([]features.WindowSample, n)
	for i := range out {
		v := float64(i)*0.618033988749895 + 0.123456789
		sf := features.SensorFeatures{
			Mean: v, Var: v + 1, Max: v + 2, Min: v - 2, Ran: 4,
			Peak: v * 3, PeakF: 1.5, Peak2: v / 2, Peak2F: 3.25,
		}
		df := features.DeviceFeatures{Acc: sf, Gyr: sf}
		out[i] = features.WindowSample{
			UserID: user, Context: sensing.ContextMovingUse,
			Day: float64(i % 7), Phone: df, Watch: df,
		}
	}
	return out
}

// BenchmarkStoreEnroll is one sequential enroll (16 windows, fsync on the
// acknowledgement path) against a single-shard and an 8-shard store.
// Sequential writers see the same latency either way — sharding pays off
// under concurrency, not here.
func BenchmarkStoreEnroll(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := store.Open(b.TempDir(), store.Options{Shards: shards, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			win := storeBenchWindows("bench", 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Enroll(fmt.Sprintf("user-%04d", i%64), win, false); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if st := s.Stats(); st.Windows > 0 {
				b.ReportMetric(float64(st.WALBytes)/float64(st.Windows), "bytes/window")
			}
		})
	}
}

// BenchmarkStoreEnrollParallel is the acceptance benchmark for sharding:
// 8 goroutines enrolling distinct users concurrently. On one shard every
// writer queues behind the same mutex and fsync; with 8 shards the user
// hash spreads writers across independent WALs so their fsyncs overlap.
func BenchmarkStoreEnrollParallel(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := store.Open(b.TempDir(), store.Options{Shards: shards, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			win := storeBenchWindows("bench", 16)
			var nextWriter atomic.Int64
			b.SetParallelism(8) // 8 concurrent writers regardless of GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				user := fmt.Sprintf("user-%04d", nextWriter.Add(1))
				for pb.Next() {
					if err := s.Enroll(user, win, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreRecovery replays a 10 000-window population (binary WAL,
// no snapshot) — the restart cost a crashed server pays before serving.
// The JSON-baseline comparison lives in internal/store
// (BenchmarkStoreRecoveryCodec), where the legacy framing can be planted.
func BenchmarkStoreRecovery(b *testing.B) {
	dir := b.TempDir()
	s, err := store.Open(dir, store.Options{SnapshotEvery: -1, NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	win := storeBenchWindows("bench", 16)
	for i := 0; i < 625; i++ { // 10 000 windows
		if err := s.Enroll(fmt.Sprintf("user-%03d", i%32), win, false); err != nil {
			b.Fatal(err)
		}
	}
	walBytes := s.Stats().WALBytes
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := store.Open(dir, store.Options{SnapshotEvery: -1, NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Windows != 10000 {
			b.Fatalf("recovered %d windows, want 10000", st.Windows)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(walBytes)/10000, "bytes/window")
}

// Machine-unlearning benches: the O(M^2) online update of Section V-I's
// fast path vs the O(M^3)-per-solve full retrain.
func BenchmarkIncrementalKRRAdd(b *testing.B) {
	inc, err := ml.NewIncrementalKRR(1, 28)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, 28)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] = rng.NormFloat64()
		if err := inc.AddSample(x, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalKRRAddRemove(b *testing.B) {
	inc, err := ml.NewIncrementalKRR(1, 28)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	// Pre-fill a sliding window.
	window := make([][]float64, 0, 400)
	for i := 0; i < 400; i++ {
		x := make([]float64, 28)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if err := inc.AddSample(x, i%2 == 0); err != nil {
			b.Fatal(err)
		}
		window = append(window, x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, 28)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if err := inc.AddSample(x, i%2 == 0); err != nil {
			b.Fatal(err)
		}
		oldest := window[0]
		window = append(window[1:], x)
		if err := inc.RemoveSample(oldest, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalVsColdRetrain compares the two paths the drift
// scheduler chooses between when a user's confidence EWMA crosses the
// retrain threshold: the Sherman–Morrison refresh around the previous
// model's standardizer (mild drift) and a full cold train (severe drift).
// The gap is the budget headroom the scheduler buys by preferring the
// incremental path.
func BenchmarkIncrementalVsColdRetrain(b *testing.B) {
	pop, err := sensing.NewPopulation(6, 99)
	if err != nil {
		b.Fatal(err)
	}
	owner := pop.Users[0]
	var impostor []features.WindowSample
	for i, u := range pop.Users {
		if u == owner {
			continue
		}
		s, err := features.Collect(u, features.CollectOptions{SessionSeconds: 60, Sessions: 1, Seed: int64(500 + i)})
		if err != nil {
			b.Fatal(err)
		}
		impostor = append(impostor, s...)
	}
	enroll, err := features.Collect(owner, features.CollectOptions{SessionSeconds: 120, Sessions: 1, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	fresh, err := features.Collect(owner, features.CollectOptions{SessionSeconds: 120, Sessions: 1, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	mode := core.Mode{Combined: true, UseContext: true}
	prev, err := core.Train(enroll, impostor, core.TrainConfig{Mode: mode, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RefreshBundle(prev, fresh, impostor, core.RefreshConfig{RecentWindows: 200}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Train(fresh, impostor, core.TrainConfig{Mode: mode, MaxPerClass: 200, Seed: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
